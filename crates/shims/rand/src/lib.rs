//! Offline stand-in for `rand` 0.8.
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`] — the surface
//! this workspace uses. The generator is SplitMix64: deterministic per
//! seed (which is all the callers rely on — they compare same-seed runs,
//! not reference values of the real `StdRng`), full 64-bit state, passes
//! basic equidistribution smoke tests below.

use std::ops::Range;

/// Core 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (`seed_from_u64` is the only constructor used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    /// Samples from the "standard" distribution of `T` (uniform `[0, 1)`
    /// for floats, uniform over all values for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits → uniform [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer draw in `[0, span)` via 128-bit multiply-shift.
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng` (callers only require same-seed reproducibility).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }
}
