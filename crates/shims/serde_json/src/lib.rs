//! Offline stand-in for `serde_json`: JSON text ⇄ the shim `serde`
//! [`Value`] tree. Provides `to_string`, `to_string_pretty`, `from_str`,
//! and a `Value` re-export — the surface this workspace uses.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type (including [`Value`]).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// --- rendering ---------------------------------------------------------

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest representation that round-trips;
                // ensure a decimal point or exponent so it reads as float
                let s = format!("{f:?}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity; match serde_json's null
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                None => return Err(Error::new("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("aurora".into())),
            ("cycles".into(), Value::UInt(700)),
            ("balance".into(), Value::Float(0.5)),
            (
                "layers".into(),
                Value::Seq(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("none".into(), Value::Null),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"name":"aurora","cycles":700,"balance":0.5,"layers":[1,2],"none":null}"#
        );
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("line\n\"quoted\"\\tab\t".into());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(from_str::<Value>("-12").unwrap(), Value::Int(-12));
        assert_eq!(from_str::<Value>("3.25").unwrap(), Value::Float(3.25));
        assert_eq!(from_str::<Value>("1e3").unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![(1u32, -2i64), (3, 4)];
        let s = to_string(&xs).unwrap();
        let back: Vec<(u32, i64)> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }
}
