//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock bencher: `bench_function` + `Bencher::iter`, the
//! `criterion_group!` / `criterion_main!` macros, and `black_box`. No
//! statistics beyond min/mean — enough to compare hot paths across
//! commits with the same binaries.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark driver handed to each registered function.
pub struct Criterion {
    /// Measurement budget per benchmark.
    budget: Duration,
    /// Minimum measured iterations.
    min_iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            budget: Duration::from_millis(500),
            min_iters: 10,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.budget,
            min_iters: self.min_iters,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Runs and times the measured closure.
pub struct Bencher {
    budget: Duration,
    min_iters: u32,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // one warmup iteration, then measure until the budget is spent
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u32;
        while iters < self.min_iters || start.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            iters += 1;
            if iters >= 10_000 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<40} mean {:>12?}  min {:>12?}  ({} iters)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// Registers benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
