//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`), range
//! strategies, tuple strategies, [`collection::vec`], [`bool::ANY`],
//! [`ProptestConfig::with_cases`], and the `prop_assert*` macros.
//!
//! Sampling is deterministic per test (seeded from the test name) and
//! there is **no shrinking** — a failing case panics with the sampled
//! values left to the assertion message.

use std::ops::Range;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seeds from a test name so each test gets a distinct, stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Test-runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy always yielding the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `Vec` strategy: length drawn from `len`, elements from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Length specifier: a range, or an exact length.
    pub trait IntoSizeRange {
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into_size_range(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::bool::Any as BoolAny;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestRng,
    };
}

/// Runs each `#[test] fn name(arg in strategy, ...) { body }` over
/// `cases` sampled inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` without shrinking is just `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn vec_strategy_respects_len(v in collection::vec((0u32..10, 0u32..10), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
