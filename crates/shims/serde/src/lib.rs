//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the small slice of serde's API the workspace actually uses:
//! the `Serialize` / `Deserialize` traits (value-tree based rather than
//! visitor based), re-exported derive macros, and impls for the std types
//! that appear in report/config structs. `serde_json` (the sibling shim)
//! renders [`Value`] trees to JSON text and parses them back.
//!
//! The data model is deliberately simple: serialization lowers a type to
//! a [`Value`] tree, deserialization lifts a [`Value`] tree back. Enums
//! use serde's externally-tagged representation so JSON output looks the
//! same as real serde's.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::ops::Range;

/// A serialized value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of a `Seq` value.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload of a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to f64 (Int / UInt / Float).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric payload as u64 if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Numeric payload as i64 if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    pub fn missing_field(name: &str) -> Self {
        Self::new(format!("missing field `{name}`"))
    }

    pub fn unexpected(expected: &str, got: &Value) -> Self {
        Self::new(format!("expected {expected}, got {got:?}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Lowers a type to a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Lifts a type back from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: deserializes one named field of a map value.
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    let field = v.get(name).ok_or_else(|| Error::missing_field(name))?;
    T::from_value(field).map_err(|e| Error::new(format!("field `{name}`: {e}")))
}

/// Derive-macro helper backing `#[serde(default)]`: an absent key lifts
/// to `T::default()` instead of a missing-field error, so documents
/// written before a field existed keep parsing.
pub fn de_field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(field) => {
            T::from_value(field).map_err(|e| Error::new(format!("field `{name}`: {e}")))
        }
        None => Ok(T::default()),
    }
}

// --- impls: primitives -------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::unexpected("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::unexpected("integer", v))?;
                <$t>::try_from(i).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // JSON has no NaN/Infinity literal; real serde_json emits null.
        if *v == Value::Null {
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| Error::unexpected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::unexpected("bool", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::unexpected("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::unexpected("single-char string", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::unexpected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::unexpected("null", v)),
        }
    }
}

// --- impls: containers -------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            _ => T::from_value(v).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::unexpected("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::unexpected("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_seq().ok_or_else(|| Error::unexpected("tuple sequence", v))?;
                Ok(($($t::from_value(
                    items.get($n).ok_or_else(|| Error::new("tuple too short"))?
                )?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::unexpected("map", v)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // sort for deterministic output
        let mut entries: Vec<_> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::unexpected("map", v)),
        }
    }
}

impl<T: Serialize> Serialize for Range<T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("start".into(), self.start.to_value()),
            ("end".into(), self.end.to_value()),
        ])
    }
}
impl<T: Deserialize> Deserialize for Range<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(de_field::<T>(v, "start")?..de_field::<T>(v, "end")?)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let r = 3u32..9;
        assert_eq!(Range::<u32>::from_value(&r.to_value()).unwrap(), r);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let t = (1u8, -2i16, 3.5f64);
        assert_eq!(<(u8, i16, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
