//! End-to-end service contracts: content-addressed caching,
//! single-flight, thread-count determinism, backpressure, timeout,
//! drain, and the NDJSON socket round-trip.

use aurora_core::{metric_names as names, AcceleratorConfig, SimError, SimRequest, Telemetry};
use aurora_model::{LayerShape, ModelId};
use aurora_serve::{respond, serve, Client, Endpoint, ServeConfig, ServeError, SimService};
use rayon::pool::ThreadPool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn small_request(seed: u64) -> SimRequest {
    SimRequest::builder(ModelId::Gcn)
        .config(AcceleratorConfig::small(4))
        .rmat(128, 800, seed)
        .layer(LayerShape::new(32, 16))
        .workload("svc")
        .build()
        .expect("valid request")
}

fn service(config: ServeConfig) -> (SimService, Telemetry) {
    let telemetry = Telemetry::enabled();
    (SimService::new(config, telemetry.clone()), telemetry)
}

#[test]
fn digest_equal_requests_hit_the_cache() {
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let req = small_request(1);
    let first = svc.handle(&req).expect("first request runs");
    assert!(!first.cached, "first sight must miss");
    let second = svc.handle(&req).expect("second request hits");
    assert!(second.cached, "digest-equal request must hit");
    // the cached answer is the *same* report, not a re-run
    assert!(Arc::ptr_eq(&first.report, &second.report));

    let m = svc.metrics();
    assert_eq!(m.counter_total(names::SERVE_REQUESTS), 2);
    assert_eq!(m.counter_total(names::SERVE_CACHE_MISSES), 1);
    assert!(m.counter_total(names::SERVE_CACHE_HITS) >= 1);
    assert!(
        m.histogram_at(names::SERVE_LATENCY_US, &aurora_core::Scope::ROOT)
            .is_some(),
        "latency histogram observed"
    );
}

#[test]
fn reports_are_identical_across_thread_counts() {
    // workers = 0 executes on the calling thread, so the installed pool
    // is the one the engine's par_iter fan-out actually uses.
    let req = small_request(2);
    let run_at = |threads: usize| {
        let (svc, _tel) = service(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        ThreadPool::new(threads).install(|| {
            serde_json::to_string(&*svc.handle(&req).expect("runs").report).expect("serialise")
        })
    };
    let seq = run_at(1);
    let par = run_at(4);
    assert_eq!(seq, par, "reports diverged across thread counts");
}

#[test]
fn concurrent_identical_requests_simulate_once() {
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let svc = Arc::new(svc);
    // a slightly larger graph so followers actually overlap the run
    let req = SimRequest::builder(ModelId::Gcn)
        .config(AcceleratorConfig::small(4))
        .rmat(2_000, 16_000, 5)
        .layer(LayerShape::new(64, 32))
        .workload("single-flight")
        .build()
        .unwrap();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let req = req.clone();
            std::thread::spawn(move || svc.handle(&req).expect("request succeeds"))
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let first = &outcomes[0].report;
    for o in &outcomes {
        assert!(Arc::ptr_eq(first, &o.report), "all callers share one run");
    }
    let m = svc.metrics();
    assert_eq!(
        m.counter_total(names::SERVE_CACHE_MISSES),
        1,
        "exactly one engine run for 8 identical concurrent requests"
    );
    assert_eq!(m.counter_total(names::SERVE_CACHE_HITS), 7);
}

#[test]
fn full_queue_rejects_with_overloaded_instead_of_blocking() {
    // queue depth 0: every fresh digest is over budget immediately
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        queue_depth: 0,
        ..ServeConfig::default()
    });
    let err = svc.handle(&small_request(3)).unwrap_err();
    assert!(
        matches!(err, ServeError::Overloaded { capacity: 0, .. }),
        "got {err:?}"
    );
    let m = svc.metrics();
    assert_eq!(m.counter_total(names::SERVE_REJECT_OVERLOADED), 1);
    // the digest is leadable again: a retry after rejection is not
    // poisoned (it just gets rejected again while the cap is 0)
    assert!(matches!(
        svc.handle(&small_request(3)).unwrap_err(),
        ServeError::Overloaded { .. }
    ));
}

#[test]
fn saturating_flood_terminates_with_ok_or_overloaded() {
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        queue_depth: 2,
        timeout_ms: 60_000,
        ..ServeConfig::default()
    });
    let svc = Arc::new(svc);
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || svc.handle(&small_request(10 + i)))
        })
        .collect();
    let mut ok = 0usize;
    let mut overloaded = 0usize;
    for h in handles {
        match h.join().unwrap() {
            Ok(_) => ok += 1,
            Err(ServeError::Overloaded { .. }) => overloaded += 1,
            Err(other) => panic!("unexpected error under load: {other:?}"),
        }
    }
    assert_eq!(ok + overloaded, 8, "every request got a definite answer");
    assert!(ok >= 1, "the queue must still make progress");
}

#[test]
fn timed_out_request_still_warms_the_cache() {
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        timeout_ms: 0,
        ..ServeConfig::default()
    });
    let req = small_request(4);
    let err = svc.handle(&req).unwrap_err();
    assert!(matches!(err, ServeError::Timeout { ms: 0 }), "got {err:?}");
    assert!(svc.metrics().counter_total(names::SERVE_TIMEOUTS) >= 1);
    // the abandoned job completes in the background and lands in the
    // cache; a zero-budget caller is then served instantly from it
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        match svc.handle(&req) {
            Ok(outcome) => {
                assert!(outcome.cached, "warmed by the abandoned run");
                break;
            }
            Err(ServeError::Timeout { .. }) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "abandoned job never landed in the cache"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
}

#[test]
fn drain_rejects_new_work_and_joins_workers() {
    let (svc, _tel) = service(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let req = small_request(6);
    svc.handle(&req).expect("pre-drain request runs");
    svc.drain();
    assert_eq!(svc.handle(&req).unwrap_err(), ServeError::ShuttingDown);
    svc.drain(); // idempotent
}

#[test]
fn invalid_requests_are_typed_errors() {
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let invalid = SimRequest {
        layers: vec![],
        ..small_request(7)
    };
    assert_eq!(
        svc.handle(&invalid).unwrap_err(),
        ServeError::Sim(SimError::EmptyLayers)
    );
    assert_eq!(svc.metrics().counter_total(names::SERVE_ERRORS), 1);
    // rejected before taking leadership: the engine never ran
    assert_eq!(svc.metrics().counter_total(names::SERVE_CACHE_MISSES), 0);
}

#[test]
fn protocol_answers_malformed_lines_without_dropping() {
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let garbled = respond(&svc, "{this is not json");
    assert_eq!(garbled.error.as_ref().unwrap().kind, "bad_request");
    assert_eq!(garbled.id, 0);
    // a readable id in an otherwise bad envelope is echoed back
    let half = respond(&svc, "{\"id\": 9, \"sim\": 5}");
    assert_eq!(half.id, 9);
    assert_eq!(half.error.as_ref().unwrap().kind, "bad_request");
    // and a well-formed line still works on the same service
    let line = serde_json::to_string(&aurora_serve::ServeRequest {
        id: 11,
        sim: small_request(8),
    })
    .unwrap();
    let ok = respond(&svc, &line);
    assert_eq!(ok.id, 11);
    assert!(ok.is_ok(), "error: {:?}", ok.error);
    assert_eq!(ok.digest, small_request(8).digest());
}

#[test]
fn unix_socket_round_trip_serves_and_caches() {
    let sock = std::env::temp_dir().join(format!("aurora-serve-test-{}.sock", std::process::id()));
    let (svc, _tel) = service(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let svc = Arc::new(svc);
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let svc = Arc::clone(&svc);
        let shutdown = Arc::clone(&shutdown);
        let endpoint = Endpoint::Unix(sock.clone());
        std::thread::spawn(move || serve(svc, &endpoint, shutdown))
    };
    // wait for the socket to appear
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(std::time::Instant::now() < deadline, "daemon never bound");
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut client = Client::connect(&Endpoint::Unix(sock.clone())).expect("connect");
    let req = small_request(9);
    let first = client.request(&req).expect("first response");
    assert!(first.is_ok(), "error: {:?}", first.error);
    assert!(!first.cached);
    assert_eq!(first.digest, req.digest());
    let second = client.request(&req).expect("second response");
    assert!(second.cached, "repeat over the wire must hit the cache");
    assert_eq!(second.report, first.report, "cached report is identical");

    shutdown.store(true, Ordering::SeqCst);
    server.join().unwrap().expect("server exits cleanly");
    assert!(!sock.exists(), "socket file removed on shutdown");
}
