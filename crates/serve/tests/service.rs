//! End-to-end service contracts: content-addressed caching,
//! single-flight, thread-count determinism, backpressure, timeout,
//! drain, the NDJSON socket round-trip, and the observability plane
//! (access log, flight recorder, metric-name completeness, admin
//! protocol over the wire).

use aurora_core::{metric_names as names, AcceleratorConfig, SimError, SimRequest, Telemetry};
use aurora_model::{LayerShape, ModelId};
use aurora_serve::{
    answer, respond, serve, serve_with, Client, Endpoint, MemoryLog, ServeConfig, ServeError,
    ServerOptions, SimService,
};
use rayon::pool::ThreadPool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn small_request(seed: u64) -> SimRequest {
    SimRequest::builder(ModelId::Gcn)
        .config(AcceleratorConfig::small(4))
        .rmat(128, 800, seed)
        .layer(LayerShape::new(32, 16))
        .workload("svc")
        .build()
        .expect("valid request")
}

fn service(config: ServeConfig) -> (SimService, Telemetry) {
    let telemetry = Telemetry::enabled();
    (SimService::new(config, telemetry.clone()), telemetry)
}

#[test]
fn digest_equal_requests_hit_the_cache() {
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let req = small_request(1);
    let first = svc.handle(&req).expect("first request runs");
    assert!(!first.cached, "first sight must miss");
    let second = svc.handle(&req).expect("second request hits");
    assert!(second.cached, "digest-equal request must hit");
    // the cached answer is the *same* report, not a re-run
    assert!(Arc::ptr_eq(&first.report, &second.report));

    let m = svc.metrics();
    assert_eq!(m.counter_total(names::SERVE_REQUESTS), 2);
    assert_eq!(m.counter_total(names::SERVE_CACHE_MISSES), 1);
    assert!(m.counter_total(names::SERVE_CACHE_HITS) >= 1);
    assert!(
        m.histogram_at(names::SERVE_LATENCY_US, &aurora_core::Scope::ROOT)
            .is_some(),
        "latency histogram observed"
    );
}

#[test]
fn reports_are_identical_across_thread_counts() {
    // workers = 0 executes on the calling thread, so the installed pool
    // is the one the engine's par_iter fan-out actually uses.
    let req = small_request(2);
    let run_at = |threads: usize| {
        let (svc, _tel) = service(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        ThreadPool::new(threads).install(|| {
            serde_json::to_string(&*svc.handle(&req).expect("runs").report).expect("serialise")
        })
    };
    let seq = run_at(1);
    let par = run_at(4);
    assert_eq!(seq, par, "reports diverged across thread counts");
}

#[test]
fn concurrent_identical_requests_simulate_once() {
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let svc = Arc::new(svc);
    // a slightly larger graph so followers actually overlap the run
    let req = SimRequest::builder(ModelId::Gcn)
        .config(AcceleratorConfig::small(4))
        .rmat(2_000, 16_000, 5)
        .layer(LayerShape::new(64, 32))
        .workload("single-flight")
        .build()
        .unwrap();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let req = req.clone();
            std::thread::spawn(move || svc.handle(&req).expect("request succeeds"))
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let first = &outcomes[0].report;
    for o in &outcomes {
        assert!(Arc::ptr_eq(first, &o.report), "all callers share one run");
    }
    let m = svc.metrics();
    assert_eq!(
        m.counter_total(names::SERVE_CACHE_MISSES),
        1,
        "exactly one engine run for 8 identical concurrent requests"
    );
    assert_eq!(m.counter_total(names::SERVE_CACHE_HITS), 7);
}

#[test]
fn full_queue_rejects_with_overloaded_instead_of_blocking() {
    // queue depth 0: every fresh digest is over budget immediately
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        queue_depth: 0,
        ..ServeConfig::default()
    });
    let err = svc.handle(&small_request(3)).unwrap_err();
    assert!(
        matches!(err, ServeError::Overloaded { capacity: 0, .. }),
        "got {err:?}"
    );
    let m = svc.metrics();
    assert_eq!(m.counter_total(names::SERVE_REJECT_OVERLOADED), 1);
    // the digest is leadable again: a retry after rejection is not
    // poisoned (it just gets rejected again while the cap is 0)
    assert!(matches!(
        svc.handle(&small_request(3)).unwrap_err(),
        ServeError::Overloaded { .. }
    ));
}

#[test]
fn saturating_flood_terminates_with_ok_or_overloaded() {
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        queue_depth: 2,
        timeout_ms: 60_000,
        ..ServeConfig::default()
    });
    let svc = Arc::new(svc);
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || svc.handle(&small_request(10 + i)))
        })
        .collect();
    let mut ok = 0usize;
    let mut overloaded = 0usize;
    for h in handles {
        match h.join().unwrap() {
            Ok(_) => ok += 1,
            Err(ServeError::Overloaded { .. }) => overloaded += 1,
            Err(other) => panic!("unexpected error under load: {other:?}"),
        }
    }
    assert_eq!(ok + overloaded, 8, "every request got a definite answer");
    assert!(ok >= 1, "the queue must still make progress");
}

#[test]
fn timed_out_request_still_warms_the_cache() {
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        timeout_ms: 0,
        ..ServeConfig::default()
    });
    let req = small_request(4);
    let err = svc.handle(&req).unwrap_err();
    assert!(matches!(err, ServeError::Timeout { ms: 0 }), "got {err:?}");
    assert!(svc.metrics().counter_total(names::SERVE_TIMEOUTS) >= 1);
    // the abandoned job completes in the background and lands in the
    // cache; a zero-budget caller is then served instantly from it
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        match svc.handle(&req) {
            Ok(outcome) => {
                assert!(outcome.cached, "warmed by the abandoned run");
                break;
            }
            Err(ServeError::Timeout { .. }) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "abandoned job never landed in the cache"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
}

#[test]
fn drain_rejects_new_work_and_joins_workers() {
    let (svc, _tel) = service(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let req = small_request(6);
    svc.handle(&req).expect("pre-drain request runs");
    svc.drain();
    assert_eq!(svc.handle(&req).unwrap_err(), ServeError::ShuttingDown);
    svc.drain(); // idempotent
}

#[test]
fn invalid_requests_are_typed_errors() {
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let invalid = SimRequest {
        layers: vec![],
        ..small_request(7)
    };
    assert_eq!(
        svc.handle(&invalid).unwrap_err(),
        ServeError::Sim(SimError::EmptyLayers)
    );
    assert_eq!(svc.metrics().counter_total(names::SERVE_ERRORS), 1);
    // rejected before taking leadership: the engine never ran
    assert_eq!(svc.metrics().counter_total(names::SERVE_CACHE_MISSES), 0);
}

#[test]
fn protocol_answers_malformed_lines_without_dropping() {
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let garbled = respond(&svc, "{this is not json");
    assert_eq!(garbled.error.as_ref().unwrap().kind, "bad_request");
    assert_eq!(garbled.id, 0);
    // a readable id in an otherwise bad envelope is echoed back
    let half = respond(&svc, "{\"id\": 9, \"sim\": 5}");
    assert_eq!(half.id, 9);
    assert_eq!(half.error.as_ref().unwrap().kind, "bad_request");
    // and a well-formed line still works on the same service
    let line = serde_json::to_string(&aurora_serve::ServeRequest {
        id: 11,
        version: aurora_core::WIRE_VERSION,
        sim: small_request(8),
    })
    .unwrap();
    let ok = respond(&svc, &line);
    assert_eq!(ok.id, 11);
    assert!(ok.is_ok(), "error: {:?}", ok.error);
    assert_eq!(ok.digest, small_request(8).digest());
}

#[test]
fn unix_socket_round_trip_serves_and_caches() {
    let sock = std::env::temp_dir().join(format!("aurora-serve-test-{}.sock", std::process::id()));
    let (svc, _tel) = service(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let svc = Arc::new(svc);
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let svc = Arc::clone(&svc);
        let shutdown = Arc::clone(&shutdown);
        let endpoint = Endpoint::Unix(sock.clone());
        std::thread::spawn(move || serve(svc, &endpoint, shutdown))
    };
    // wait for the socket to appear
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(std::time::Instant::now() < deadline, "daemon never bound");
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut client = Client::connect(&Endpoint::Unix(sock.clone())).expect("connect");
    let req = small_request(9);
    let first = client.request(&req).expect("first response");
    assert!(first.is_ok(), "error: {:?}", first.error);
    assert!(!first.cached);
    assert_eq!(first.digest, req.digest());
    let second = client.request(&req).expect("second response");
    assert!(second.cached, "repeat over the wire must hit the cache");
    assert_eq!(second.report, first.report, "cached report is identical");

    shutdown.store(true, Ordering::SeqCst);
    server.join().unwrap().expect("server exits cleanly");
    assert!(!sock.exists(), "socket file removed on shutdown");
}

/// Every metric constant in `names::SERVE_ALL` must appear in the
/// snapshot after one hit, one miss, one error, one timeout, and one
/// reject — a new `serve.*` name that nothing records fails here.
#[test]
fn every_serve_metric_name_is_recorded() {
    let telemetry = Telemetry::enabled();
    let normal = SimService::new(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        telemetry.clone(),
    );
    let req = small_request(20);
    normal.handle(&req).expect("miss runs");
    normal.handle(&req).expect("hit runs");
    let invalid = SimRequest {
        layers: vec![],
        ..small_request(21)
    };
    assert!(normal.handle(&invalid).is_err(), "invalid request errors");

    let impatient = SimService::new(
        ServeConfig {
            workers: 1,
            timeout_ms: 0,
            ..ServeConfig::default()
        },
        telemetry.clone(),
    );
    assert!(matches!(
        impatient.handle(&small_request(22)).unwrap_err(),
        ServeError::Timeout { .. }
    ));

    let choked = SimService::new(
        ServeConfig {
            workers: 1,
            queue_depth: 0,
            ..ServeConfig::default()
        },
        telemetry.clone(),
    );
    assert!(matches!(
        choked.handle(&small_request(23)).unwrap_err(),
        ServeError::Overloaded { .. }
    ));

    let snap = telemetry.snapshot();
    for name in names::SERVE_ALL {
        assert!(
            snap.contains_name(name),
            "metric `{name}` was never recorded by hit/miss/error/timeout/reject traffic"
        );
    }
}

/// The transport writes exactly one access-log line per simulation
/// request — including parse failures — and none for admin traffic.
#[test]
fn access_log_gets_one_line_per_request() {
    let log = Arc::new(MemoryLog::default());
    let svc = SimService::with_access_log(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        Telemetry::enabled(),
        Arc::clone(&log) as Arc<dyn aurora_serve::EventLog>,
    );
    let line = serde_json::to_string(&aurora_serve::ServeRequest {
        id: 1,
        version: aurora_core::WIRE_VERSION,
        sim: small_request(30),
    })
    .unwrap();
    let miss = answer(&svc, &line);
    let hit = answer(&svc, &line);
    answer(&svc, "{\"id\": 2, \"admin\": \"health\"}"); // never logged
    answer(&svc, "{broken json"); // logged as an error

    let lines = log.lines();
    assert_eq!(lines.len(), 3, "2 sim + 1 parse failure, admin excluded");
    let records: Vec<serde_json::Value> = lines
        .iter()
        .map(|l| serde_json::from_str(l).expect("access line parses"))
        .collect();
    let outcome = |i: usize| records[i].get("outcome").and_then(|v| v.as_str()).unwrap();
    assert_eq!(outcome(0), "miss");
    assert_eq!(outcome(1), "hit");
    assert_eq!(outcome(2), "error");
    // monotonic sequence, real digests, and transport-measured sizes
    let seq = |i: usize| records[i].get("seq").and_then(|v| v.as_u64()).unwrap();
    assert!(seq(0) < seq(1) && seq(1) < seq(2), "seq must be monotonic");
    for (record, sent) in records.iter().zip([&miss, &hit]) {
        assert_eq!(
            record.get("digest").and_then(|v| v.as_str()),
            Some(small_request(30).digest().as_str())
        );
        assert_eq!(
            record.get("bytes_out").and_then(|v| v.as_u64()),
            Some(sent.len() as u64 + 1),
            "bytes_out counts the response line plus its newline"
        );
        for key in ["queue_wait_us", "execute_us", "latency_us"] {
            assert!(record.get(key).is_some(), "missing timing field `{key}`");
        }
    }
    assert!(
        records[2].get("error").and_then(|v| v.as_str()).is_some(),
        "parse failures carry the error message"
    );
}

/// With `slow_ms: 0` every request trips the flight recorder; executed
/// requests carry a bound-attribution profile, failures carry errors.
#[test]
fn flight_recorder_retains_slow_and_error_requests() {
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        slow_ms: 0,
        flight_capacity: 8,
        ..ServeConfig::default()
    });
    svc.handle(&small_request(40)).expect("miss runs");
    svc.handle(&small_request(40)).expect("hit runs");
    let invalid = SimRequest {
        layers: vec![],
        ..small_request(41)
    };
    assert!(svc.handle(&invalid).is_err());

    let flights = svc.flights();
    assert_eq!(flights.len(), 3, "slow_ms 0 records every request");
    assert_eq!(flights[0].outcome, "miss");
    let profile = flights[0]
        .profile
        .as_ref()
        .expect("executed request carries its bound attribution");
    assert!(profile.total_cycles > 0);
    assert!(
        ["compute", "noc", "dram", "imbalance"].contains(&profile.dominant.as_str()),
        "unexpected dominant bound `{}`",
        profile.dominant
    );
    assert_eq!(flights[1].outcome, "hit");
    assert!(
        flights[1].profile.is_some(),
        "hits replay the cached report's profile"
    );
    assert_eq!(flights[2].outcome, "error");
    assert!(flights[2].error.is_some(), "failures carry the message");
    assert!(flights[2].profile.is_none(), "no report, no profile");
    // each record preserves the request JSON for replay
    assert!(flights[0].request.get("model").is_some());
}

/// The drain grace window keeps open connections answering after
/// SIGTERM so pollers observe health flip from `ok` to `draining`.
#[test]
fn admin_health_flips_to_draining_over_the_wire() {
    let sock = std::env::temp_dir().join(format!("aurora-admin-test-{}.sock", std::process::id()));
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let svc = Arc::new(svc);
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let svc = Arc::clone(&svc);
        let shutdown = Arc::clone(&shutdown);
        let endpoint = Endpoint::Unix(sock.clone());
        std::thread::spawn(move || {
            serve_with(
                svc,
                &endpoint,
                shutdown,
                ServerOptions {
                    drain_grace: Duration::from_secs(10),
                },
            )
        })
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(std::time::Instant::now() < deadline, "daemon never bound");
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut client = Client::connect(&Endpoint::Unix(sock.clone())).expect("connect");
    client.request(&small_request(50)).expect("sim runs");
    let health = client.admin("health").expect("health answers");
    assert_eq!(
        health.get("status").and_then(|v| v.as_str()),
        Some("ok"),
        "live daemon is ready"
    );
    let stats = client.admin("stats").expect("stats answers");
    let inner = stats.get("stats").expect("stats body");
    assert!(inner.get("requests").and_then(|v| v.as_u64()).unwrap() >= 1);
    assert!(inner.get("latency_us").is_some(), "latency digest present");
    let metrics = client.admin("metrics").expect("metrics answers");
    let prometheus = metrics
        .get("prometheus")
        .and_then(|v| v.as_str())
        .expect("prometheus exposition present");
    assert!(
        prometheus.contains("aurora_serve_requests"),
        "exposition names the serve counters"
    );

    shutdown.store(true, Ordering::SeqCst);
    // the open connection stays answering through the grace window and
    // reports draining once the accept loop has handed off
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let health = client.admin("health").expect("health during drain");
        if health.get("status").and_then(|v| v.as_str()) == Some("draining") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "health never flipped to draining"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(client);
    server.join().unwrap().expect("server exits cleanly");
    assert!(!sock.exists(), "socket file removed on shutdown");
}

/// The `"session"` protocol verb end to end, in-process: open runs the
/// base request and pins the warm state, delta re-simulates
/// incrementally with a reply bit-identical to a one-shot run of the
/// post-delta graph, close evicts. Also the envelope version gate.
#[test]
fn session_verb_open_delta_close_over_the_protocol() {
    use aurora_core::{GraphDelta, GraphSpec, SessionRequestBuilder};

    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let req = small_request(21);
    let sb = SessionRequestBuilder::from_request(req.clone());

    let line = |cmd: &aurora_core::SessionCommand| {
        serde_json::to_string(&aurora_serve::SessionLine {
            id: 7,
            version: aurora_core::WIRE_VERSION,
            session: cmd.clone(),
        })
        .unwrap()
    };

    // open: a fresh run, digest = d0 = the base request digest
    let opened = respond_line(&svc, &line(&sb.open().unwrap()));
    assert!(opened.is_ok(), "open failed: {:?}", opened.error);
    assert!(!opened.cached);
    assert_eq!(opened.digest, sb.sid());

    // delta: structurally grow the graph; the reply must equal a
    // one-shot run of the post-delta graph byte for byte
    let delta = GraphDelta {
        add_vertices: 1,
        insert_edges: vec![(0, 128)],
        ..GraphDelta::default()
    };
    let applied = respond_line(&svc, &line(&sb.delta(delta.clone())));
    assert!(applied.is_ok(), "delta failed: {:?}", applied.error);
    assert!(!applied.cached);
    assert_ne!(applied.digest, sb.sid(), "digest chain advanced");
    let fresh_req = SimRequest {
        graph: GraphSpec::Inline(delta.apply(&req.graph.resolve().unwrap()).unwrap()),
        ..req.clone()
    };
    let fresh = svc.handle(&fresh_req).expect("one-shot run");
    assert_eq!(
        serde_json::to_string(&applied.report.unwrap()).unwrap(),
        serde_json::to_string(&*fresh.report).unwrap(),
        "session reply must be bit-identical to a from-scratch run"
    );

    // an empty delta is a no-op hit that does not advance the chain
    let noop = respond_line(&svc, &line(&sb.delta(GraphDelta::default())));
    assert!(noop.cached);
    assert_eq!(noop.digest, applied.digest);

    // close evicts; a second close answers unknown_session
    let closed = respond_line(&svc, &line(&sb.close()));
    assert!(closed.is_ok());
    assert_eq!(closed.digest, applied.digest);
    assert_eq!(svc.session_len(), 0);
    let gone = respond_line(&svc, &line(&sb.close()));
    assert_eq!(gone.error.unwrap().kind, "unknown_session");

    // a line from the future is rejected with a typed error
    let future = line(&sb.open().unwrap()).replacen(
        &format!("\"version\":{}", aurora_core::WIRE_VERSION),
        &format!("\"version\":{}", aurora_core::WIRE_VERSION + 40),
        1,
    );
    let rejected = respond_line(&svc, &future);
    assert_eq!(rejected.error.unwrap().kind, "unsupported_version");
}

/// A sim envelope declaring a future version is refused with the typed
/// kind, while v0 envelopes (no version key at all) still answer.
#[test]
fn envelope_version_gate_on_sim_lines() {
    let (svc, _tel) = service(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let req = small_request(22);
    let sim_json = serde_json::to_string(&req).unwrap();
    let v0 = format!("{{\"id\":1,\"sim\":{sim_json}}}");
    let ok = respond(&svc, &v0);
    assert!(ok.is_ok(), "v0 line must still answer: {:?}", ok.error);
    let future = format!("{{\"id\":2,\"version\":99,\"sim\":{sim_json}}}");
    let refused = respond(&svc, &future);
    assert_eq!(refused.id, 2);
    assert_eq!(refused.error.unwrap().kind, "unsupported_version");
}

/// Parses an answered protocol line back into the typed response.
fn respond_line(svc: &SimService, line: &str) -> aurora_core::SimResponse {
    serde_json::from_str(&answer(svc, line)).expect("response line parses")
}
