//! Golden wire-schema test: the JSON forms of `SimRequest` and
//! `SimResponse` are a public protocol — clients in other processes
//! (and other languages) parse them — so their shape is pinned to
//! committed fixtures, like the Chrome-trace schema in
//! `crates/bench/tests/trace_schema.rs`. Regenerate deliberately with
//! `UPDATE_FIXTURES=1 cargo test -p aurora-serve --test wire_schema`
//! after an intentional protocol change (and say so in the PR).

use aurora_core::{AcceleratorConfig, SimRequest, SimResponse, WireError};
use aurora_graph::Dataset;
use aurora_model::{LayerShape, ModelId};
use aurora_serve::ServeRequest;
use std::path::PathBuf;

/// The canonical example request: every `GraphSpec::Dataset` field, a
/// non-default config, two layers, and non-default options exercised.
fn golden_request() -> SimRequest {
    SimRequest::builder(ModelId::Gcn)
        .config(AcceleratorConfig::small(8))
        .dataset(Dataset::Cora, 16)
        .layers(&[LayerShape::new(64, 32), LayerShape::new(32, 16)])
        .workload("golden")
        .input_density(0.5)
        .build()
        .expect("golden request is valid")
}

/// The content digest of [`golden_request`], pinned: a change here means
/// every deployed cache key changes — treat it like a schema break.
/// (Bumped from `cc7d7517d623781e` when the wire gained the `version`
/// field: it always serializes, so every digest re-keyed.)
const GOLDEN_DIGEST: &str = "a31c31303b9236a4";

fn fixture(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel)
}

fn check(rel: &str, actual: &str) -> String {
    let path = fixture(rel);
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, format!("{actual}\n")).unwrap();
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {path:?} ({e}); run with UPDATE_FIXTURES=1"));
    assert_eq!(
        expected.trim_end(),
        actual,
        "wire schema drifted from {rel}; if intentional, regenerate with UPDATE_FIXTURES=1"
    );
    expected
}

#[test]
fn request_envelope_matches_committed_fixture() {
    let envelope = ServeRequest {
        id: 42,
        version: aurora_core::WIRE_VERSION,
        sim: golden_request(),
    };
    let pretty = serde_json::to_string_pretty(&envelope).unwrap();
    let committed = check("sim_request.json", &pretty);

    // the committed document deserializes back to the same request …
    let parsed: ServeRequest = serde_json::from_str(&committed).unwrap();
    assert_eq!(parsed, envelope);
    // … and compact/pretty render the same value tree (the digest is
    // computed over the compact form)
    let compact = serde_json::to_string(&envelope.sim).unwrap();
    let reparsed: SimRequest = serde_json::from_str(&compact).unwrap();
    assert_eq!(reparsed, envelope.sim);
}

#[test]
fn response_envelope_matches_committed_fixture() {
    let response = SimResponse::err(
        42,
        golden_request().digest(),
        WireError::new("overloaded", "overloaded: 64 queued >= capacity 64"),
    );
    let pretty = serde_json::to_string_pretty(&response).unwrap();
    let committed = check("sim_response.json", &pretty);
    let parsed: SimResponse = serde_json::from_str(&committed).unwrap();
    assert_eq!(parsed, response);
    assert!(!parsed.is_ok());
}

#[test]
fn golden_digest_is_pinned() {
    assert_eq!(
        golden_request().digest(),
        GOLDEN_DIGEST,
        "the cache-key function changed; bump the pinned digest only for \
         an intentional request-schema or hash change"
    );
}

/// A v0 client line — written before the `version` field existed — must
/// still round-trip: the field deserializes to 0 on both the envelope
/// and the request, and validation accepts it (only versions *newer*
/// than the server's are rejected).
#[test]
fn v0_lines_without_version_still_parse_and_validate() {
    let pretty = serde_json::to_string_pretty(&ServeRequest {
        id: 42,
        version: aurora_core::WIRE_VERSION,
        sim: golden_request(),
    })
    .unwrap();
    let committed = check("sim_request_v0.json", &strip_version_keys(&pretty));
    let parsed: ServeRequest = serde_json::from_str(&committed).unwrap();
    assert_eq!(parsed.version, 0);
    assert_eq!(parsed.sim.version, 0);
    assert!(parsed.sim.validate().is_ok());
    // the version field is hashed content, but it *defaults* to 0 on
    // both paths — so a v0 client's digests (and cache keys) are
    // exactly the builder's, and only an explicit version bump re-keys
    assert_eq!(parsed.sim.digest(), GOLDEN_DIGEST);
    assert_ne!(
        SimRequest {
            version: aurora_core::WIRE_VERSION,
            ..parsed.sim.clone()
        }
        .digest(),
        GOLDEN_DIGEST
    );
}

/// Drops every `"version": N` line from a pretty-printed envelope,
/// reconstructing what a v0 client serialized. Sound because `version`
/// is never the last field of its object (it leads `SimRequest` and
/// sits mid-envelope), so each removed line carries its own trailing
/// comma.
fn strip_version_keys(pretty: &str) -> String {
    pretty
        .lines()
        .filter(|l| !l.trim_start().starts_with("\"version\""))
        .collect::<Vec<_>>()
        .join("\n")
}
