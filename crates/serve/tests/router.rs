//! Cluster contracts, end to end over the wire: digest affinity keeps
//! repeat requests on warm shards, a killed worker costs clients
//! nothing (failover + respawn), and a drain under load accounts for
//! every routed request exactly once in the access log.

use aurora_core::{AcceleratorConfig, SimRequest, Telemetry};
use aurora_model::{LayerShape, ModelId};
use aurora_serve::{
    serve, Backend, BackendHealth, Client, Endpoint, MemoryLog, Router, RouterConfig, ServeConfig,
    SimService, ThreadLauncher,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_request(seed: u64) -> SimRequest {
    SimRequest::builder(ModelId::Gcn)
        .config(AcceleratorConfig::small(4))
        .rmat(128, 800, seed)
        .layer(LayerShape::new(32, 16))
        .workload("cluster")
        .build()
        .expect("valid request")
}

fn scratch_sock(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "aurora-router-test-{}-{tag}.sock",
        std::process::id()
    ))
}

fn worker_config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    }
}

fn fast_probe() -> RouterConfig {
    RouterConfig {
        probe_interval: Duration::from_millis(25),
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_secs(30),
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(100),
    }
}

/// Serves `router` on `sock` from a background thread; returns the
/// shutdown flag and the join handle.
fn serve_router(
    router: Arc<Router>,
    sock: PathBuf,
) -> (
    Arc<AtomicBool>,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let shutdown = Arc::new(AtomicBool::new(false));
    let handle = {
        let shutdown = Arc::clone(&shutdown);
        let endpoint = Endpoint::Unix(sock.clone());
        std::thread::spawn(move || serve(router, &endpoint, shutdown))
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "router never bound");
        std::thread::sleep(Duration::from_millis(10));
    }
    (shutdown, handle)
}

/// A supervised in-process worker shard for `tag`.
fn thread_backend(name: &str, tag: &str) -> Arc<Backend> {
    let sock = scratch_sock(tag);
    let _ = std::fs::remove_file(&sock);
    Arc::new(Backend::supervised(
        name,
        Endpoint::Unix(sock.clone()),
        Arc::new(ThreadLauncher {
            endpoint: Endpoint::Unix(sock),
            config: worker_config(),
        }),
    ))
}

#[test]
fn repeat_requests_stay_on_warm_shards() {
    let backends = vec![
        thread_backend("w0", "warm-0"),
        thread_backend("w1", "warm-1"),
    ];
    let router = Arc::new(Router::new(backends, fast_probe()));
    router.start().expect("cluster starts");
    assert_eq!(router.wait_ready(Duration::from_secs(10)), 2);

    // determinism first: a second router over the same shard names
    // places every digest identically — affinity survives restarts
    let shadow = Router::new(
        vec![
            Arc::new(Backend::external("w0", Endpoint::Tcp("127.0.0.1:1".into()))),
            Arc::new(Backend::external("w1", Endpoint::Tcp("127.0.0.1:2".into()))),
        ],
        RouterConfig::default(),
    );
    for seed in 0..32u64 {
        let digest = small_request(seed).digest();
        assert_eq!(
            router.shard_for(&digest),
            shadow.shard_for(&digest),
            "placement of {digest} must depend only on shard names"
        );
    }

    let front = scratch_sock("warm-front");
    let _ = std::fs::remove_file(&front);
    let (shutdown, server) = serve_router(Arc::clone(&router), front.clone());

    let mut client = Client::connect(&Endpoint::Unix(front)).expect("connect to router");
    let requests: Vec<SimRequest> = (0..6).map(small_request).collect();
    let mut first_reports = Vec::new();
    for req in &requests {
        let reply = client.request(req).expect("routed response");
        assert!(reply.is_ok(), "error: {:?}", reply.error);
        first_reports.push(reply.report);
    }
    // every repeat must land on the shard that already holds the digest
    for (req, first) in requests.iter().zip(&first_reports) {
        let reply = client.request(req).expect("repeat response");
        assert!(
            reply.cached,
            "repeat of {} missed its warm shard",
            req.digest()
        );
        assert_eq!(&reply.report, first, "cached report diverged");
    }
    // the cluster aggregate sees all 6 hits
    let stats = client.admin("stats").expect("cluster stats");
    let agg = stats.get("stats").expect("aggregate body");
    assert_eq!(agg.get("cache_hits").and_then(|v| v.as_u64()), Some(6));
    assert_eq!(agg.get("cache_misses").and_then(|v| v.as_u64()), Some(6));
    assert_eq!(
        stats
            .get("router")
            .and_then(|r| r.get("routed"))
            .and_then(|v| v.as_u64()),
        Some(12)
    );

    drop(client);
    shutdown.store(true, Ordering::SeqCst);
    server.join().unwrap().expect("router exits cleanly");
}

/// A worker shard the *test* owns: the router sees only the endpoint,
/// so killing the serve thread is invisible until a forward fails.
fn external_worker(name: &str, tag: &str) -> (Arc<Backend>, Arc<AtomicBool>) {
    let sock = scratch_sock(tag);
    let _ = std::fs::remove_file(&sock);
    let shutdown = Arc::new(AtomicBool::new(false));
    {
        let endpoint = Endpoint::Unix(sock.clone());
        let flag = Arc::clone(&shutdown);
        let service = Arc::new(SimService::new(worker_config(), Telemetry::enabled()));
        std::thread::spawn(move || {
            let _ = serve(service, &endpoint, flag);
        });
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "worker never bound");
        std::thread::sleep(Duration::from_millis(10));
    }
    (
        Arc::new(Backend::external(name, Endpoint::Unix(sock))),
        shutdown,
    )
}

#[test]
fn crashed_worker_fails_over_with_zero_client_errors() {
    let (b0, kill0) = external_worker("w0", "crash-0");
    let (b1, kill1) = external_worker("w1", "crash-1");
    let (b2, kill2) = external_worker("w2", "crash-2");
    let kills = [kill0, kill1, kill2];
    let log = Arc::new(MemoryLog::default());
    let router = Arc::new(Router::with_access_log(
        vec![b0, b1, b2],
        RouterConfig {
            // one startup probe pass, then effectively never again: the
            // router must discover the crash at the transport, not from
            // the prober racing ahead of the test
            probe_interval: Duration::from_secs(600),
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(30),
            ..RouterConfig::default()
        },
        Arc::clone(&log) as Arc<dyn aurora_serve::EventLog>,
    ));
    router.start().expect("cluster starts");
    assert_eq!(router.wait_ready(Duration::from_secs(10)), 3);

    let front = scratch_sock("crash-front");
    let _ = std::fs::remove_file(&front);
    let (shutdown, server) = serve_router(Arc::clone(&router), front.clone());
    let mut client = Client::connect(&Endpoint::Unix(front)).expect("connect to router");

    // warm a spread of digests so the victim provably owns traffic
    let requests: Vec<SimRequest> = (0..9).map(small_request).collect();
    for req in &requests {
        assert!(client.request(req).expect("warmup").is_ok());
    }
    let victim = router
        .shard_for(&requests[0].digest())
        .expect("routable")
        .to_string();
    let victim_index = router
        .backends()
        .iter()
        .position(|b| b.name == victim)
        .expect("victim exists");

    // crash it behind the router's back: the worker drains and unlinks
    // its socket while the router still believes it is healthy
    kills[victim_index].store(true, Ordering::SeqCst);
    let victim_sock = scratch_sock(&format!("crash-{victim_index}"));
    let deadline = Instant::now() + Duration::from_secs(10);
    while victim_sock.exists() {
        assert!(Instant::now() < deadline, "victim never went away");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        router.backends()[victim_index].health(),
        BackendHealth::Ok,
        "precondition: the router must not know yet"
    );

    // every request — including the victim's — still answers correctly
    for req in &requests {
        let reply = client.request(req).expect("post-crash response");
        assert!(
            reply.is_ok(),
            "digest {} saw a client-visible error after the crash: {:?}",
            req.digest(),
            reply.error
        );
    }
    // the transport discovered the crash and re-routed
    assert_eq!(
        router.backends()[victim_index].health(),
        BackendHealth::Down
    );
    assert!(
        log.lines().iter().any(|l| l.contains("\"failover\"")),
        "no failover record despite a crashed shard"
    );
    assert!(router.totals().failovers >= 1);

    drop(client);
    shutdown.store(true, Ordering::SeqCst);
    server.join().unwrap().expect("router exits cleanly");
}

#[test]
fn downed_supervised_worker_is_respawned_and_rejoins() {
    let backends = vec![
        thread_backend("w0", "respawn-0"),
        thread_backend("w1", "respawn-1"),
        thread_backend("w2", "respawn-2"),
    ];
    let router = Arc::new(Router::new(backends, fast_probe()));
    router.start().expect("cluster starts");
    assert_eq!(router.wait_ready(Duration::from_secs(10)), 3);

    let front = scratch_sock("respawn-front");
    let _ = std::fs::remove_file(&front);
    let (shutdown, server) = serve_router(Arc::clone(&router), front.clone());
    let mut client = Client::connect(&Endpoint::Unix(front)).expect("connect to router");

    let requests: Vec<SimRequest> = (0..9).map(small_request).collect();
    for req in &requests {
        assert!(client.request(req).expect("warmup").is_ok());
    }
    let victim = router
        .shard_for(&requests[0].digest())
        .expect("routable")
        .to_string();
    let victim_index = router
        .backends()
        .iter()
        .position(|b| b.name == victim)
        .expect("victim exists");

    // take the victim down; the router routes around it immediately…
    router.backends()[victim_index].stop();
    for req in &requests {
        let reply = client.request(req).expect("post-stop response");
        assert!(reply.is_ok(), "error while victim down: {:?}", reply.error);
    }

    // …and the prober brings a successor back into rotation
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let b = &router.backends()[victim_index];
        if b.health() == BackendHealth::Ok && b.respawns() >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "victim never respawned (health {:?}, respawns {})",
            b.health(),
            b.respawns()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // and serves its digests again (fresh cache: a re-run, same answer)
    let reply = client.request(&requests[0]).expect("post-respawn response");
    assert!(reply.is_ok(), "error: {:?}", reply.error);

    drop(client);
    shutdown.store(true, Ordering::SeqCst);
    server.join().unwrap().expect("router exits cleanly");
}

#[test]
fn drain_under_load_accounts_for_every_request_exactly_once() {
    let backends = vec![
        thread_backend("w0", "drain-0"),
        thread_backend("w1", "drain-1"),
    ];
    let log = Arc::new(MemoryLog::default());
    let router = Arc::new(Router::with_access_log(
        backends,
        fast_probe(),
        Arc::clone(&log) as Arc<dyn aurora_serve::EventLog>,
    ));
    router.start().expect("cluster starts");
    assert_eq!(router.wait_ready(Duration::from_secs(10)), 2);

    let front = scratch_sock("drain-front");
    let _ = std::fs::remove_file(&front);
    let (shutdown, server) = serve_router(Arc::clone(&router), front.clone());

    const CONNS: usize = 4;
    const PER_CONN: usize = 8;
    let workers: Vec<_> = (0..CONNS)
        .map(|c| {
            let front = front.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&Endpoint::Unix(front)).expect("connect");
                let mut answered = 0usize;
                for r in 0..PER_CONN {
                    // a small digest set shared across connections, so
                    // the load mixes misses, joins, and warm hits
                    let req = small_request(100 + ((c + r) % 5) as u64);
                    let reply = client.request(&req).expect("response under load");
                    assert!(reply.is_ok(), "error under load: {:?}", reply.error);
                    answered += 1;
                }
                answered
            })
        })
        .collect();
    let answered: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(answered, CONNS * PER_CONN);

    // drain the cluster under no pending work: the router must stop
    // accepting, stop its workers, and exit cleanly
    shutdown.store(true, Ordering::SeqCst);
    server.join().unwrap().expect("router exits cleanly");
    for b in router.backends() {
        assert_eq!(b.health(), BackendHealth::Down, "drain stops every worker");
    }

    // exact accounting: one RouteRecord per sim request, each seq once
    let lines = log.lines();
    assert_eq!(
        lines.len(),
        CONNS * PER_CONN,
        "access log must hold exactly one record per routed request"
    );
    let mut seqs = std::collections::BTreeSet::new();
    for line in &lines {
        let record: serde_json::Value = serde_json::from_str(line).expect("route record parses");
        assert_eq!(
            record.get("outcome").and_then(|v| v.as_str()),
            Some("ok"),
            "unexpected outcome in {line}"
        );
        let seq = record.get("seq").and_then(|v| v.as_u64()).expect("seq");
        assert!(seqs.insert(seq), "seq {seq} appeared twice");
        assert!(record.get("shard").and_then(|v| v.as_str()).is_some());
    }
    assert_eq!(*seqs.iter().next().unwrap(), 1, "seq starts at 1");
    assert_eq!(*seqs.iter().last().unwrap(), (CONNS * PER_CONN) as u64);
}

/// Streaming sessions through the router: every line of one session —
/// open, deltas, close — routes by the *same* digest (`d₀`), so the
/// whole session lands on the shard holding its warm state, and the
/// access log attributes every session line to that one shard.
#[test]
fn session_lines_pin_to_one_shard() {
    use aurora_core::{GraphDelta, SessionRequestBuilder};

    let backends = vec![
        thread_backend("s0", "sess-0"),
        thread_backend("s1", "sess-1"),
    ];
    let log = Arc::new(MemoryLog::default());
    let router = Arc::new(Router::with_access_log(
        backends,
        fast_probe(),
        Arc::clone(&log) as Arc<dyn aurora_serve::EventLog>,
    ));
    router.start().expect("cluster starts");
    assert_eq!(router.wait_ready(Duration::from_secs(10)), 2);

    let front = scratch_sock("sess-front");
    let _ = std::fs::remove_file(&front);
    let (shutdown, server) = serve_router(Arc::clone(&router), front.clone());
    let mut client = Client::connect(&Endpoint::Unix(front)).expect("connect to router");

    let req = small_request(77);
    let sb = SessionRequestBuilder::from_request(req);
    let pinned = router
        .shard_for(sb.sid())
        .expect("routable shard")
        .to_string();

    let opened = client.session(&sb.open().unwrap()).expect("open routes");
    assert!(opened.is_ok(), "open failed: {:?}", opened.error);
    let mut digest = opened.digest.clone();
    for _ in 0..3 {
        let d = GraphDelta {
            add_vertices: 1,
            ..GraphDelta::default()
        };
        let applied = client.session(&sb.delta(d)).expect("delta routes");
        assert!(applied.is_ok(), "delta failed: {:?}", applied.error);
        assert_ne!(applied.digest, digest, "chain advances per delta");
        digest = applied.digest;
    }
    let closed = client.session(&sb.close()).expect("close routes");
    assert!(closed.is_ok());
    assert_eq!(closed.digest, digest);

    shutdown.store(true, Ordering::SeqCst);
    drop(client);
    server.join().unwrap().expect("router exits cleanly");

    // every session line was attributed to the pinned shard
    let records: Vec<serde_json::Value> = log
        .lines()
        .iter()
        .map(|l| serde_json::from_str(l).expect("route record parses"))
        .collect();
    assert_eq!(records.len(), 5, "open + 3 deltas + close");
    for r in &records {
        assert_eq!(
            r.get("shard").and_then(|v| v.as_str()),
            Some(pinned.as_str()),
            "session line left its pinned shard: {r:?}"
        );
        assert_eq!(r.get("outcome").and_then(|v| v.as_str()), Some("ok"));
    }
    // open routes by the request digest; delta/close by sid — one value
    let digests: std::collections::BTreeSet<_> = records
        .iter()
        .map(|r| {
            r.get("digest")
                .and_then(|v| v.as_str())
                .unwrap()
                .to_string()
        })
        .collect();
    assert_eq!(digests.len(), 1, "all lines route by d0");
    assert!(digests.contains(sb.sid()));
}
