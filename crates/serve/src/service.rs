//! Admission control and scheduling: the in-process heart of the
//! daemon, usable (and tested) without any socket.
//!
//! Request lifecycle:
//!
//! 1. **Lookup** — the request digest is checked against the result
//!    cache. A ready report answers immediately; an identical in-flight
//!    run is joined (single-flight). Both count as `serve.cache.hits`.
//! 2. **Admission** — a leader tries to enqueue its job on the bounded
//!    queue. A full queue is an immediate typed
//!    [`ServeError::Overloaded`] — admission never blocks, so a
//!    saturated daemon degrades into fast rejections instead of
//!    unbounded latency.
//! 3. **Execution** — worker threads pop jobs in FIFO order and run the
//!    engine through the canonical [`AuroraSimulator::run`]; panics are
//!    caught and surfaced as internal errors. The leader (and any
//!    followers) wait on the flight with the per-request timeout. A
//!    timed-out waiter abandons the wait, but the job still completes
//!    and warms the cache.
//! 4. **Drain** — [`SimService::drain`] stops admission (new requests
//!    get [`ServeError::ShuttingDown`]), lets queued jobs finish, and
//!    joins the workers.

use crate::cache::{Lookup, ResultCache};
use crate::error::ServeError;
use aurora_core::{
    metric_names as names, AuroraSimulator, Scope, SimReport, SimRequest, Telemetry,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`SimService`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads executing simulations. `0` means no pool: the
    /// leading caller runs its own job inline (useful in tests, where
    /// the caller controls the thread environment).
    pub workers: usize,
    /// Bounded admission-queue depth; beyond it requests are rejected
    /// with [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Result-cache capacity (completed reports retained, FIFO).
    pub cache_capacity: usize,
    /// Per-request wait budget in milliseconds.
    pub timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: rayon::configured_threads(),
            queue_depth: 64,
            cache_capacity: 256,
            timeout_ms: 30_000,
        }
    }
}

/// A successfully answered request.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    pub digest: String,
    /// `true` when the report came from the cache or an in-flight join —
    /// i.e. this request ran no engine work of its own.
    pub cached: bool,
    pub report: Arc<SimReport>,
}

struct Job {
    digest: String,
    request: SimRequest,
}

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

struct Inner {
    cache: ResultCache,
    queue: Queue,
    draining: AtomicBool,
    inflight: AtomicI64,
    config: ServeConfig,
    telemetry: Telemetry,
}

impl Inner {
    /// Runs one job's engine work and resolves its flight. Engine runs
    /// use a *disabled* telemetry handle: a long-running daemon must not
    /// grow an unbounded trace buffer, and per-run metric deltas would
    /// alias across concurrent requests. Service-level `serve.*`
    /// metrics live on the service handle instead.
    fn execute(&self, job: Job) {
        let sim = AuroraSimulator::new(job.request.config);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(&job.request)));
        let result = match result {
            Ok(Ok(report)) => Ok(report),
            Ok(Err(e)) => Err(ServeError::Sim(e)),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "engine panicked".into());
                Err(ServeError::Sim(aurora_core::SimError::Internal(msg)))
            }
        };
        self.cache.complete(&job.digest, result);
    }

    fn worker_loop(&self) {
        loop {
            let mut jobs = self.queue.jobs.lock().unwrap();
            let job = loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                if self.draining.load(Ordering::SeqCst) {
                    return;
                }
                jobs = self.queue.available.wait(jobs).unwrap();
            };
            drop(jobs);
            self.execute(job);
        }
    }
}

/// The concurrent simulation service: result cache + bounded queue +
/// worker pool. Cheap to clone-share via [`Arc`].
pub struct SimService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl SimService {
    /// Builds the service and spawns its worker pool. `telemetry`
    /// receives the `serve.*` metrics (pass [`Telemetry::disabled`] to
    /// opt out).
    pub fn new(config: ServeConfig, telemetry: Telemetry) -> Self {
        let inner = Arc::new(Inner {
            cache: ResultCache::new(config.cache_capacity),
            queue: Queue {
                jobs: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
            },
            draining: AtomicBool::new(false),
            inflight: AtomicI64::new(0),
            config,
            telemetry,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn serve worker")
            })
            .collect();
        Self {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    /// A snapshot of the service's `serve.*` metrics.
    pub fn metrics(&self) -> aurora_core::MetricsSnapshot {
        self.inner.telemetry.snapshot()
    }

    /// Answers one request: cache hit, in-flight join, or fresh engine
    /// run, under the configured timeout and queue budget.
    pub fn handle(&self, request: &SimRequest) -> Result<ServeOutcome, ServeError> {
        let started = Instant::now();
        let result = self.handle_inner(request);
        let tel = &self.inner.telemetry;
        tel.observe(
            names::SERVE_LATENCY_US,
            &Scope::ROOT,
            started.elapsed().as_micros() as u64,
        );
        match &result {
            Err(ServeError::Overloaded { .. }) => {
                tel.counter_add(names::SERVE_REJECT_OVERLOADED, &Scope::ROOT, 1)
            }
            Err(ServeError::Timeout { .. }) => {
                tel.counter_add(names::SERVE_TIMEOUTS, &Scope::ROOT, 1)
            }
            Err(_) => tel.counter_add(names::SERVE_ERRORS, &Scope::ROOT, 1),
            Ok(_) => {}
        }
        result
    }

    fn handle_inner(&self, request: &SimRequest) -> Result<ServeOutcome, ServeError> {
        let inner = &*self.inner;
        let tel = &inner.telemetry;
        if inner.draining.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        // Reject malformed requests before they take cache leadership.
        request.validate().map_err(ServeError::Sim)?;
        let digest = request.digest();
        let timeout = Duration::from_millis(inner.config.timeout_ms);

        let inflight = InflightGuard::enter(inner);
        tel.counter_add(names::SERVE_REQUESTS, &Scope::ROOT, 1);

        let flight = match inner.cache.lookup(&digest) {
            Lookup::Hit(report) => {
                tel.counter_add(names::SERVE_CACHE_HITS, &Scope::ROOT, 1);
                drop(inflight);
                return Ok(ServeOutcome {
                    digest,
                    cached: true,
                    report,
                });
            }
            Lookup::Join(flight) => {
                let report = flight.wait(timeout)?;
                tel.counter_add(names::SERVE_CACHE_HITS, &Scope::ROOT, 1);
                drop(inflight);
                return Ok(ServeOutcome {
                    digest,
                    cached: true,
                    report,
                });
            }
            Lookup::Lead(flight) => flight,
        };
        tel.counter_add(names::SERVE_CACHE_MISSES, &Scope::ROOT, 1);

        let job = Job {
            digest: digest.clone(),
            request: request.clone(),
        };
        if inner.config.workers == 0 {
            // No pool: the leader executes inline on its own thread.
            inner.execute(job);
        } else {
            let rejected = {
                let mut jobs = inner.queue.jobs.lock().unwrap();
                if jobs.len() >= inner.config.queue_depth {
                    Some(jobs.len())
                } else {
                    jobs.push_back(job);
                    inner.queue.available.notify_one();
                    None
                }
            };
            if let Some(queued) = rejected {
                let err = ServeError::Overloaded {
                    queued,
                    capacity: inner.config.queue_depth,
                };
                // Release leadership so a later identical request can
                // lead; followers that already joined share the error.
                inner.cache.abort(&digest, err.clone());
                return Err(err);
            }
        }
        let report = flight.wait(timeout)?;
        drop(inflight);
        Ok(ServeOutcome {
            digest,
            cached: false,
            report,
        })
    }

    /// Graceful shutdown: stop admitting, finish every queued job, join
    /// the workers. Idempotent.
    pub fn drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.queue.available.notify_all();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // workers == 0: queued jobs cannot exist (leaders ran inline)
    }
}

impl Drop for SimService {
    fn drop(&mut self) {
        self.drain();
    }
}

/// RAII tracker of the `serve.inflight` gauge.
struct InflightGuard<'a> {
    inner: &'a Inner,
}

impl<'a> InflightGuard<'a> {
    fn enter(inner: &'a Inner) -> Self {
        let now = inner.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        inner
            .telemetry
            .gauge_set(names::SERVE_INFLIGHT, &Scope::ROOT, now as f64);
        Self { inner }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let now = self.inner.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        self.inner
            .telemetry
            .gauge_set(names::SERVE_INFLIGHT, &Scope::ROOT, now.max(0) as f64);
    }
}
