//! Admission control and scheduling: the in-process heart of the
//! daemon, usable (and tested) without any socket.
//!
//! Request lifecycle:
//!
//! 1. **Lookup** — the request digest is checked against the result
//!    cache. A ready report answers immediately; an identical in-flight
//!    run is joined (single-flight). Both count as `serve.cache.hits`.
//! 2. **Admission** — a leader tries to enqueue its job on the bounded
//!    queue. A full queue is an immediate typed
//!    [`ServeError::Overloaded`] — admission never blocks, so a
//!    saturated daemon degrades into fast rejections instead of
//!    unbounded latency.
//! 3. **Execution** — worker threads pop jobs in FIFO order and run the
//!    engine through the canonical [`AuroraSimulator::run`]; panics are
//!    caught and surfaced as internal errors. The leader (and any
//!    followers) wait on the flight with the per-request timeout. A
//!    timed-out waiter abandons the wait, but the job still completes
//!    and warms the cache.
//! 4. **Drain** — [`SimService::drain`] stops admission (new requests
//!    get [`ServeError::ShuttingDown`]), lets queued jobs finish, and
//!    joins the workers.
//!
//! Every request is also *observed*: [`SimService::handle_traced`]
//! returns an [`AccessRecord`] alongside the result (the transport
//! fills in `bytes_out` and writes it through the service's
//! [`EventLog`]), slow and failed requests land in the bounded
//! [`FlightRecorder`], and [`SimService::stats`] condenses the live
//! state plus the `serve.*` metrics into one serializable
//! [`ServiceStats`] for the `{"admin":"stats"}` command.

use crate::cache::{Lookup, ResultCache};
use crate::error::ServeError;
use crate::observe::{
    AccessRecord, EventLog, FlightProfile, FlightRecord, FlightRecorder, JobTiming, NullLog,
    Outcome,
};
use crate::sessions::{SessionReply, SessionTable};
use aurora_core::{
    metric_names as names, AuroraSimulator, Histogram, Scope, SessionCommand, SimReport,
    SimRequest, Telemetry,
};
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`SimService`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads executing simulations. `0` means no pool: the
    /// leading caller runs its own job inline (useful in tests, where
    /// the caller controls the thread environment).
    pub workers: usize,
    /// Bounded admission-queue depth; beyond it requests are rejected
    /// with [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Result-cache capacity (completed reports retained, FIFO).
    pub cache_capacity: usize,
    /// Per-request wait budget in milliseconds.
    pub timeout_ms: u64,
    /// Flight-recorder slowness threshold: successful requests at least
    /// this slow (end to end) are recorded. `0` records every request;
    /// failures are recorded regardless.
    pub slow_ms: u64,
    /// Flight-recorder ring capacity (`0` disables recording).
    pub flight_capacity: usize,
    /// Open streaming sessions retained (LRU-evicted beyond this; an
    /// evicted client gets `unknown_session` and re-opens).
    pub session_capacity: usize,
    /// Idle budget for an open session in milliseconds; `0` disables
    /// TTL eviction.
    pub session_ttl_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: rayon::configured_threads(),
            queue_depth: 64,
            cache_capacity: 256,
            timeout_ms: 30_000,
            slow_ms: 1_000,
            flight_capacity: 32,
            session_capacity: 16,
            session_ttl_ms: 600_000,
        }
    }
}

/// A successfully answered request.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    pub digest: String,
    /// `true` when the report came from the cache or an in-flight join —
    /// i.e. this request ran no engine work of its own.
    pub cached: bool,
    /// `Hit`, `Join` or `Miss` — the cache path that answered.
    pub outcome: Outcome,
    /// Queue-wait/execute split of the led run (zeros for hits and
    /// joins, which ran nothing of their own).
    pub timing: JobTiming,
    pub report: Arc<SimReport>,
}

struct Job {
    digest: String,
    request: SimRequest,
    /// When the job entered the queue (or started inline), for the
    /// `serve.queue_wait_us` split.
    enqueued: Instant,
}

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

struct Inner {
    cache: ResultCache,
    queue: Queue,
    draining: AtomicBool,
    inflight: AtomicI64,
    /// Monotonic request sequence, shared by the access log and the
    /// flight recorder.
    seq: AtomicU64,
    started: Instant,
    config: ServeConfig,
    telemetry: Telemetry,
    recorder: FlightRecorder,
    access_log: Arc<dyn EventLog>,
    sessions: SessionTable,
}

impl Inner {
    /// Runs one job's engine work and resolves its flight. Engine runs
    /// use a *disabled* telemetry handle: a long-running daemon must not
    /// grow an unbounded trace buffer, and per-run metric deltas would
    /// alias across concurrent requests. Service-level `serve.*`
    /// metrics live on the service handle instead.
    fn execute(&self, job: Job) {
        let queue_wait_us = job.enqueued.elapsed().as_micros() as u64;
        let run_started = Instant::now();
        let sim = AuroraSimulator::new(job.request.config);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(&job.request)));
        let result = match result {
            Ok(Ok(report)) => Ok(report),
            Ok(Err(e)) => Err(ServeError::Sim(e)),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "engine panicked".into());
                Err(ServeError::Sim(aurora_core::SimError::Internal(msg)))
            }
        };
        let timing = JobTiming {
            queue_wait_us,
            execute_us: run_started.elapsed().as_micros() as u64,
        };
        self.cache.complete(&job.digest, result, timing);
    }

    fn worker_loop(&self) {
        loop {
            let mut jobs = self.queue.jobs.lock().unwrap();
            let job = loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                if self.draining.load(Ordering::SeqCst) {
                    return;
                }
                jobs = self.queue.available.wait(jobs).unwrap();
            };
            drop(jobs);
            self.execute(job);
        }
    }
}

/// The concurrent simulation service: result cache + bounded queue +
/// worker pool. Cheap to clone-share via [`Arc`].
pub struct SimService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl SimService {
    /// Builds the service and spawns its worker pool. `telemetry`
    /// receives the `serve.*` metrics (pass [`Telemetry::disabled`] to
    /// opt out). The access log is the [`NullLog`]; use
    /// [`SimService::with_access_log`] to plug a sink in.
    pub fn new(config: ServeConfig, telemetry: Telemetry) -> Self {
        Self::with_access_log(config, telemetry, Arc::new(NullLog))
    }

    /// [`SimService::new`] with an explicit access-log sink.
    pub fn with_access_log(
        config: ServeConfig,
        telemetry: Telemetry,
        access_log: Arc<dyn EventLog>,
    ) -> Self {
        let inner = Arc::new(Inner {
            cache: ResultCache::new(config.cache_capacity),
            queue: Queue {
                jobs: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
            },
            draining: AtomicBool::new(false),
            inflight: AtomicI64::new(0),
            seq: AtomicU64::new(0),
            started: Instant::now(),
            config,
            telemetry,
            recorder: FlightRecorder::new(config.flight_capacity),
            access_log,
            sessions: SessionTable::new(
                config.session_capacity,
                Duration::from_millis(config.session_ttl_ms),
            ),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn serve worker")
            })
            .collect();
        Self {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    /// A snapshot of the service's `serve.*` metrics, with the worker
    /// pool's `pool.*` gauges exported at the same instant — the admin
    /// `metrics` command and the Prometheus exposition both read this,
    /// so dashboards see engine-pool health next to request health.
    pub fn metrics(&self) -> aurora_core::MetricsSnapshot {
        aurora_core::export_pool_metrics(&self.inner.telemetry);
        self.inner.telemetry.snapshot()
    }

    /// Time since the service was built.
    pub fn uptime(&self) -> Duration {
        self.inner.started.elapsed()
    }

    /// True once [`SimService::drain`] has started.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Requests currently inside the service (queued or executing).
    pub fn inflight(&self) -> u64 {
        self.inner.inflight.load(Ordering::SeqCst).max(0) as u64
    }

    /// Jobs waiting on the admission queue right now.
    pub fn queue_len(&self) -> usize {
        self.inner.queue.jobs.lock().unwrap().len()
    }

    /// Ready entries in the result cache.
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// The flight recorder's retained slow/error requests, oldest first.
    pub fn flights(&self) -> Vec<FlightRecord> {
        self.inner.recorder.dump()
    }

    /// Allocates the next request sequence number (also used by the
    /// transport for lines that never reach `handle_traced`).
    pub(crate) fn next_seq(&self) -> u64 {
        self.inner.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Writes one finished access record through the configured sink.
    pub fn log_access(&self, record: &AccessRecord) {
        if !self.inner.access_log.enabled() {
            return;
        }
        let line = serde_json::to_string(record).expect("access record serializes");
        self.inner.access_log.emit(&line);
    }

    /// Answers one request: cache hit, in-flight join, or fresh engine
    /// run, under the configured timeout and queue budget.
    pub fn handle(&self, request: &SimRequest) -> Result<ServeOutcome, ServeError> {
        self.handle_traced(request).0
    }

    /// Open streaming sessions currently resident.
    pub fn session_len(&self) -> usize {
        self.inner.sessions.len()
    }

    /// Answers one session command (the `"session"` protocol verb):
    /// open runs the base request from scratch and caches the warm
    /// state, delta applies incrementally, close evicts and answers the
    /// final state.
    pub fn handle_session(&self, cmd: &SessionCommand) -> Result<SessionReply, ServeError> {
        self.handle_session_traced(cmd).0
    }

    /// [`SimService::handle_session`] plus the op's [`AccessRecord`]
    /// (`bytes_out` is 0; the transport owns the wire size). Session
    /// lines share the sim lines' access log and error counters —
    /// dashboards see one request stream.
    pub fn handle_session_traced(
        &self,
        cmd: &SessionCommand,
    ) -> (Result<SessionReply, ServeError>, AccessRecord) {
        let inner = &*self.inner;
        let seq = self.next_seq();
        let started = Instant::now();
        let result = self.handle_session_inner(cmd);
        let latency_us = started.elapsed().as_micros() as u64;
        let tel = &inner.telemetry;
        tel.observe(names::SERVE_LATENCY_US, &Scope::ROOT, latency_us);
        if result.is_err() {
            tel.counter_add(names::SERVE_ERRORS, &Scope::ROOT, 1);
        }
        let outcome = match &result {
            Ok(reply) if reply.cached => Outcome::Hit,
            Ok(_) => Outcome::Miss,
            Err(e) => Outcome::of_error(e),
        };
        let record = AccessRecord {
            seq,
            digest: match &result {
                Ok(reply) => reply.digest.clone(),
                Err(_) => cmd.routing_digest().unwrap_or_default(),
            },
            workload: format!("session:{}", cmd.op),
            outcome: outcome.label().to_string(),
            queue_wait_us: 0,
            execute_us: if matches!(&result, Ok(r) if !r.cached) {
                latency_us
            } else {
                0
            },
            latency_us,
            bytes_out: 0,
            error: result.as_ref().err().map(|e| e.to_string()),
        };
        (result, record)
    }

    fn handle_session_inner(&self, cmd: &SessionCommand) -> Result<SessionReply, ServeError> {
        let inner = &*self.inner;
        if inner.draining.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        cmd.validate().map_err(ServeError::Sim)?;
        let _inflight = InflightGuard::enter(inner);
        inner
            .telemetry
            .counter_add(names::SERVE_REQUESTS, &Scope::ROOT, 1);
        match cmd.op.as_str() {
            SessionCommand::OPEN => inner.sessions.open(cmd.sim.as_ref().expect("validated")),
            SessionCommand::DELTA => inner.sessions.apply(
                cmd.sid.as_deref().expect("validated"),
                cmd.delta.as_ref().expect("validated"),
            ),
            SessionCommand::CLOSE => inner.sessions.close(cmd.sid.as_deref().expect("validated")),
            _ => unreachable!("validate() rejected unknown ops"),
        }
    }

    /// [`SimService::handle`] plus the request's [`AccessRecord`]. The
    /// record's `bytes_out` is 0 — the transport owns the wire size.
    /// Slow and failed requests are captured by the flight recorder
    /// here, so every entry point (socket or in-process) feeds it.
    pub fn handle_traced(
        &self,
        request: &SimRequest,
    ) -> (Result<ServeOutcome, ServeError>, AccessRecord) {
        let inner = &*self.inner;
        let seq = self.next_seq();
        let started = Instant::now();
        let result = self.handle_inner(request);
        let latency_us = started.elapsed().as_micros() as u64;

        let tel = &inner.telemetry;
        tel.observe(names::SERVE_LATENCY_US, &Scope::ROOT, latency_us);
        match &result {
            Err(ServeError::Overloaded { .. }) => {
                tel.counter_add(names::SERVE_REJECT_OVERLOADED, &Scope::ROOT, 1)
            }
            Err(ServeError::Timeout { .. }) => {
                tel.counter_add(names::SERVE_TIMEOUTS, &Scope::ROOT, 1)
            }
            Err(_) => tel.counter_add(names::SERVE_ERRORS, &Scope::ROOT, 1),
            Ok(_) => {}
        }

        let (outcome, timing, error) = match &result {
            Ok(o) => (o.outcome, o.timing, None),
            Err(e) => (
                Outcome::of_error(e),
                JobTiming::default(),
                Some(e.to_string()),
            ),
        };
        let record = AccessRecord {
            seq,
            digest: match &result {
                Ok(o) => o.digest.clone(),
                Err(_) => request.digest(),
            },
            workload: request.workload_label(),
            outcome: outcome.label().to_string(),
            queue_wait_us: timing.queue_wait_us,
            execute_us: timing.execute_us,
            latency_us,
            bytes_out: 0,
            error,
        };

        if outcome.is_failure() || latency_us >= inner.config.slow_ms.saturating_mul(1_000) {
            inner.recorder.record(FlightRecord {
                seq: record.seq,
                digest: record.digest.clone(),
                workload: record.workload.clone(),
                outcome: record.outcome.clone(),
                queue_wait_us: record.queue_wait_us,
                execute_us: record.execute_us,
                latency_us,
                error: record.error.clone(),
                request: serde::Serialize::to_value(request),
                profile: result
                    .as_ref()
                    .ok()
                    .and_then(|o| FlightProfile::of(&o.report)),
                // Only a led run has a fresh host profile of its own;
                // hits and joins would re-attribute the leader's.
                host_profile: result
                    .as_ref()
                    .ok()
                    .filter(|o| !o.cached)
                    .and_then(|o| o.report.host_profile.clone()),
            });
        }

        (result, record)
    }

    fn handle_inner(&self, request: &SimRequest) -> Result<ServeOutcome, ServeError> {
        let inner = &*self.inner;
        let tel = &inner.telemetry;
        if inner.draining.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        // Reject malformed requests before they take cache leadership.
        request.validate().map_err(ServeError::Sim)?;
        let digest = request.digest();
        let timeout = Duration::from_millis(inner.config.timeout_ms);

        let inflight = InflightGuard::enter(inner);
        tel.counter_add(names::SERVE_REQUESTS, &Scope::ROOT, 1);

        let flight = match inner.cache.lookup(&digest) {
            Lookup::Hit(report) => {
                tel.counter_add(names::SERVE_CACHE_HITS, &Scope::ROOT, 1);
                drop(inflight);
                return Ok(ServeOutcome {
                    digest,
                    cached: true,
                    outcome: Outcome::Hit,
                    timing: JobTiming::default(),
                    report,
                });
            }
            Lookup::Join(flight) => {
                let report = flight.wait(timeout)?;
                tel.counter_add(names::SERVE_CACHE_HITS, &Scope::ROOT, 1);
                drop(inflight);
                return Ok(ServeOutcome {
                    digest,
                    cached: true,
                    outcome: Outcome::Join,
                    timing: JobTiming::default(),
                    report,
                });
            }
            Lookup::Lead(flight) => flight,
        };
        tel.counter_add(names::SERVE_CACHE_MISSES, &Scope::ROOT, 1);

        let job = Job {
            digest: digest.clone(),
            request: request.clone(),
            enqueued: Instant::now(),
        };
        if inner.config.workers == 0 {
            // No pool: the leader executes inline on its own thread.
            inner.execute(job);
        } else {
            let rejected = {
                let mut jobs = inner.queue.jobs.lock().unwrap();
                if jobs.len() >= inner.config.queue_depth {
                    Some(jobs.len())
                } else {
                    jobs.push_back(job);
                    inner.queue.available.notify_one();
                    None
                }
            };
            if let Some(queued) = rejected {
                let err = ServeError::Overloaded {
                    queued,
                    capacity: inner.config.queue_depth,
                };
                // Release leadership so a later identical request can
                // lead; followers that already joined share the error.
                inner.cache.abort(&digest, err.clone());
                return Err(err);
            }
        }
        let report = flight.wait(timeout)?;
        // the worker measured the split and parked it on the flight
        let timing = flight.timing().unwrap_or_default();
        tel.observe(
            names::SERVE_QUEUE_WAIT_US,
            &Scope::ROOT,
            timing.queue_wait_us,
        );
        drop(inflight);
        Ok(ServeOutcome {
            digest,
            cached: false,
            outcome: Outcome::Miss,
            timing,
            report,
        })
    }

    /// Live + metric state condensed for `{"admin":"stats"}`.
    pub fn stats(&self) -> ServiceStats {
        let snap = self.metrics();
        let hits = snap.counter_total(names::SERVE_CACHE_HITS);
        let misses = snap.counter_total(names::SERVE_CACHE_MISSES);
        let answered = hits + misses;
        ServiceStats {
            status: if self.is_draining() { "draining" } else { "ok" }.to_string(),
            uptime_us: self.uptime().as_micros() as u64,
            requests: snap.counter_total(names::SERVE_REQUESTS),
            cache_hits: hits,
            cache_misses: misses,
            hit_ratio: if answered == 0 {
                0.0
            } else {
                hits as f64 / answered as f64
            },
            cache_size: self.cache_len() as u64,
            cache_capacity: self.inner.config.cache_capacity as u64,
            inflight: self.inflight(),
            queued: self.queue_len() as u64,
            queue_capacity: self.inner.config.queue_depth as u64,
            rejects: snap.counter_total(names::SERVE_REJECT_OVERLOADED),
            timeouts: snap.counter_total(names::SERVE_TIMEOUTS),
            errors: snap.counter_total(names::SERVE_ERRORS),
            latency_us: LatencySummary::of(
                snap.histogram_at(names::SERVE_LATENCY_US, &Scope::ROOT),
            ),
            queue_wait_us: LatencySummary::of(
                snap.histogram_at(names::SERVE_QUEUE_WAIT_US, &Scope::ROOT),
            ),
            flights: self.inner.recorder.len() as u64,
            pool: PoolSummary::current(),
        }
    }

    /// Graceful shutdown: stop admitting, finish every queued job, join
    /// the workers. Idempotent.
    pub fn drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.sessions.clear();
        self.inner.queue.available.notify_all();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // workers == 0: queued jobs cannot exist (leaders ran inline)
    }
}

impl Drop for SimService {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Quantile digest of one latency histogram, for stats payloads.
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_us: f64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes a histogram; zeros when it was never observed.
    pub fn of(histogram: Option<&Histogram>) -> Self {
        match histogram {
            Some(h) => Self {
                count: h.count,
                mean_us: h.mean(),
                p50_us: h.p50(),
                p95_us: h.p95(),
                p99_us: h.p99(),
                max_us: h.max,
            },
            None => Self {
                count: 0,
                mean_us: 0.0,
                p50_us: 0,
                p95_us: 0,
                p99_us: 0,
                max_us: 0,
            },
        }
    }
}

/// The `{"admin":"stats"}` payload: live service state plus the
/// `serve.*` metric family, one serializable struct.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceStats {
    /// `ok`, or `draining` once shutdown started.
    pub status: String,
    pub uptime_us: u64,
    pub requests: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Hits over answered (hits + misses); 0 before any answer.
    pub hit_ratio: f64,
    pub cache_size: u64,
    pub cache_capacity: u64,
    pub inflight: u64,
    pub queued: u64,
    pub queue_capacity: u64,
    pub rejects: u64,
    pub timeouts: u64,
    pub errors: u64,
    pub latency_us: LatencySummary,
    pub queue_wait_us: LatencySummary,
    /// Records currently retained by the flight recorder.
    pub flights: u64,
    /// Engine worker-pool counters (cumulative since process start).
    pub pool: PoolSummary,
}

/// The work-stealing pool's counters, condensed for stats payloads.
/// Cumulative over the life of the process, not this service alone.
#[derive(Debug, Clone, Serialize)]
pub struct PoolSummary {
    /// Pool size including the caller thread (≥ 1).
    pub workers: u64,
    /// Parallel regions executed, inline ones included.
    pub regions: u64,
    /// Deepest observed region nesting.
    pub max_depth: u64,
    pub tasks_executed: u64,
    pub tasks_stolen: u64,
    pub busy_us: u64,
    pub idle_us: u64,
}

impl PoolSummary {
    /// Snapshots the current pool.
    pub fn current() -> Self {
        let stats = rayon::current_stats();
        let totals = stats.totals();
        Self {
            workers: stats.threads as u64,
            regions: stats.regions,
            max_depth: stats.max_depth,
            tasks_executed: totals.executed,
            tasks_stolen: totals.stolen,
            busy_us: totals.busy_us,
            idle_us: totals.idle_us,
        }
    }
}

/// RAII tracker of the `serve.inflight` gauge.
struct InflightGuard<'a> {
    inner: &'a Inner,
}

impl<'a> InflightGuard<'a> {
    fn enter(inner: &'a Inner) -> Self {
        let now = inner.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        inner
            .telemetry
            .gauge_set(names::SERVE_INFLIGHT, &Scope::ROOT, now as f64);
        Self { inner }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let now = self.inner.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        self.inner
            .telemetry
            .gauge_set(names::SERVE_INFLIGHT, &Scope::ROOT, now.max(0) as f64);
    }
}
