//! The daemon's streaming-session state: a bounded table of open
//! [`SimSession`]s keyed by session id (`d₀`, the base request digest).
//!
//! Sessions are *stateful* — the whole point is the warm per-tile
//! artifacts living on one worker — so the table enforces the
//! discipline the cache never needed:
//!
//! * **Exclusive applies.** A delta takes its session *out* of the
//!   table, runs the engine without holding the table lock, and puts it
//!   back. A second line for the same sid while one is out answers a
//!   typed `bad_request` ("session busy") instead of blocking a
//!   connection thread — the NDJSON protocol is one-line-one-reply, and
//!   a well-behaved client pipelines deltas on one connection anyway.
//! * **Bounded residency.** At most `session_capacity` open sessions;
//!   beyond that, opening evicts the least-recently-used idle session.
//!   Sessions idle past `session_ttl_ms` are evicted opportunistically
//!   on any table access. Eviction is safe by construction: a client
//!   whose session was evicted gets `unknown_session` and re-opens —
//!   the open replays from the base request, so nothing is lost but
//!   warmth.
//! * **Idempotent opens.** Re-opening an existing sid (same base
//!   request → same digest) replays the session's current report with
//!   `cached: true` rather than resetting it — a client retrying a
//!   dropped open must not rewind a session that already advanced.

use crate::error::ServeError;
use aurora_core::{AuroraSimulator, GraphDelta, SimError, SimReport, SimRequest, SimSession};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One session op's answer: the digest-chain head after the op, whether
/// the report was replayed rather than computed, and the report of the
/// session's current graph.
#[derive(Debug, Clone)]
pub struct SessionReply {
    pub digest: String,
    pub cached: bool,
    pub report: SimReport,
}

struct Slot {
    /// `None` while a delta has the session checked out.
    session: Option<SimSession>,
    last_used: Instant,
}

/// The bounded, TTL-evicting table of open sessions.
pub struct SessionTable {
    slots: Mutex<HashMap<String, Slot>>,
    capacity: usize,
    ttl: Duration,
}

impl SessionTable {
    pub fn new(capacity: usize, ttl: Duration) -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
            capacity,
            ttl,
        }
    }

    /// Open sessions (including checked-out ones).
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn unknown(sid: &str) -> ServeError {
        ServeError::Sim(SimError::UnknownSession(sid.to_string()))
    }

    fn busy(sid: &str) -> ServeError {
        ServeError::BadRequest(format!("session {sid} is busy (delta in flight)"))
    }

    /// Drops idle sessions whose last use is older than the TTL.
    /// Checked-out slots are left alone — the in-flight apply refreshes
    /// `last_used` when it returns.
    fn evict_expired(&self, slots: &mut HashMap<String, Slot>) {
        if self.ttl.is_zero() {
            return;
        }
        let now = Instant::now();
        slots.retain(|_, slot| {
            slot.session.is_none() || now.duration_since(slot.last_used) < self.ttl
        });
    }

    /// Makes room for one more session by evicting the least-recently
    /// used *idle* one. Fails (`Overloaded`) only when the table is full
    /// of checked-out sessions.
    fn evict_for_capacity(&self, slots: &mut HashMap<String, Slot>) -> Result<(), ServeError> {
        while slots.len() >= self.capacity.max(1) {
            let victim = slots
                .iter()
                .filter(|(_, slot)| slot.session.is_some())
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(sid, _)| sid.clone());
            match victim {
                Some(sid) => {
                    slots.remove(&sid);
                }
                None => {
                    return Err(ServeError::Overloaded {
                        queued: slots.len(),
                        capacity: self.capacity,
                    })
                }
            }
        }
        Ok(())
    }

    /// Opens (or idempotently re-opens) a session for `req`.
    pub fn open(&self, req: &SimRequest) -> Result<SessionReply, ServeError> {
        let sid = req.digest();
        {
            let mut slots = self.slots.lock().unwrap();
            self.evict_expired(&mut slots);
            if let Some(slot) = slots.get_mut(&sid) {
                let Some(session) = slot.session.as_ref() else {
                    return Err(Self::busy(&sid));
                };
                slot.last_used = Instant::now();
                return Ok(SessionReply {
                    digest: session.digest().to_string(),
                    cached: true,
                    report: session.last_report().clone(),
                });
            }
        }
        // The from-scratch run happens outside the table lock; two
        // concurrent first opens of one sid both run, and the second
        // insert wins — identical content, only wasted work.
        let session = AuroraSimulator::new(req.config)
            .open_session(req)
            .map_err(ServeError::Sim)?;
        let reply = SessionReply {
            digest: session.digest().to_string(),
            cached: false,
            report: session.last_report().clone(),
        };
        let mut slots = self.slots.lock().unwrap();
        self.evict_expired(&mut slots);
        if !slots.contains_key(&sid) {
            self.evict_for_capacity(&mut slots)?;
        }
        slots.insert(
            sid,
            Slot {
                session: Some(session),
                last_used: Instant::now(),
            },
        );
        Ok(reply)
    }

    /// Applies a delta to an open session (checked out for the duration
    /// of the engine run). A failed apply keeps the session open — its
    /// graph and digest did not advance — so the client can correct and
    /// continue.
    pub fn apply(&self, sid: &str, delta: &GraphDelta) -> Result<SessionReply, ServeError> {
        let mut session = {
            let mut slots = self.slots.lock().unwrap();
            self.evict_expired(&mut slots);
            let slot = slots.get_mut(sid).ok_or_else(|| Self::unknown(sid))?;
            slot.session.take().ok_or_else(|| Self::busy(sid))?
        };
        let result = session.apply(delta);
        let reply = result.map(|outcome| SessionReply {
            digest: outcome.digest,
            cached: outcome.cached,
            report: session.last_report().clone(),
        });
        let mut slots = self.slots.lock().unwrap();
        // normal path: the slot waited for us. When it vanished while
        // checked out (drain cleared the table) the session just drops
        // and the reply still answers the delta that ran.
        if let Some(slot) = slots.get_mut(sid) {
            slot.session = Some(session);
            slot.last_used = Instant::now();
        }
        reply.map_err(ServeError::Sim)
    }

    /// Closes a session, answering its final digest and report.
    pub fn close(&self, sid: &str) -> Result<SessionReply, ServeError> {
        let mut slots = self.slots.lock().unwrap();
        self.evict_expired(&mut slots);
        match slots.get(sid) {
            None => Err(Self::unknown(sid)),
            Some(slot) if slot.session.is_none() => Err(Self::busy(sid)),
            Some(_) => {
                let slot = slots.remove(sid).expect("checked above");
                let session = slot.session.expect("checked above");
                Ok(SessionReply {
                    digest: session.digest().to_string(),
                    cached: true,
                    report: session.last_report().clone(),
                })
            }
        }
    }

    /// Drops every idle session (drain path). Checked-out sessions are
    /// dropped when their apply tries to put them back.
    pub fn clear(&self) {
        self.slots.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_core::AcceleratorConfig;
    use aurora_model::{LayerShape, ModelId};

    fn request(seed: u64) -> SimRequest {
        SimRequest::builder(ModelId::Gcn)
            .config(AcceleratorConfig::small(4))
            .rmat(128, 700, seed)
            .layer(LayerShape::new(8, 4))
            .build()
            .unwrap()
    }

    // A delta valid against any graph (edge membership is irrelevant to
    // the table semantics these tests cover).
    fn one_delta(table: &SessionTable, sid: &str) -> SessionReply {
        table
            .apply(
                sid,
                &GraphDelta {
                    add_vertices: 1,
                    ..GraphDelta::default()
                },
            )
            .unwrap()
    }

    #[test]
    fn open_apply_close_roundtrip() {
        let table = SessionTable::new(4, Duration::from_secs(60));
        let req = request(1);
        let sid = req.digest();
        let opened = table.open(&req).unwrap();
        assert!(!opened.cached);
        assert_eq!(opened.digest, sid);
        assert_eq!(table.len(), 1);
        // re-open replays instead of resetting
        let reopened = table.open(&req).unwrap();
        assert!(reopened.cached);
        assert_eq!(reopened.digest, opened.digest);
        // a delta advances the chain
        let applied = one_delta(&table, &sid);
        assert!(!applied.cached);
        assert_ne!(applied.digest, sid);
        // close answers the advanced digest; the sid is then unknown
        let closed = table.close(&sid).unwrap();
        assert_eq!(closed.digest, applied.digest);
        assert_eq!(table.len(), 0);
        assert!(matches!(
            table.close(&sid),
            Err(ServeError::Sim(SimError::UnknownSession(_)))
        ));
        assert!(matches!(
            table.apply(&sid, &GraphDelta::default()),
            Err(ServeError::Sim(SimError::UnknownSession(_)))
        ));
    }

    #[test]
    fn failed_delta_keeps_session_open() {
        let table = SessionTable::new(4, Duration::from_secs(60));
        let req = request(2);
        let sid = req.digest();
        table.open(&req).unwrap();
        let bad = GraphDelta {
            remove_edges: vec![(0, 9999)],
            ..GraphDelta::default()
        };
        let err = table.apply(&sid, &bad).unwrap_err();
        assert_eq!(err.kind(), "invalid_delta");
        // still open and usable
        let ok = one_delta(&table, &sid);
        assert!(!ok.cached);
        table.close(&sid).unwrap();
    }

    #[test]
    fn capacity_evicts_least_recently_used_idle_session() {
        let table = SessionTable::new(2, Duration::from_secs(60));
        let (a, b, c) = (request(3), request(4), request(5));
        table.open(&a).unwrap();
        table.open(&b).unwrap();
        // touch a so b is the LRU victim
        table.open(&a).unwrap();
        table.open(&c).unwrap();
        assert_eq!(table.len(), 2);
        assert!(matches!(
            table.close(&b.digest()),
            Err(ServeError::Sim(SimError::UnknownSession(_)))
        ));
        table.close(&a.digest()).unwrap();
        table.close(&c.digest()).unwrap();
    }

    #[test]
    fn ttl_evicts_idle_sessions() {
        let table = SessionTable::new(4, Duration::from_millis(1));
        let req = request(6);
        let sid = req.digest();
        table.open(&req).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert!(matches!(
            table.apply(
                &sid,
                &GraphDelta {
                    add_vertices: 1,
                    ..GraphDelta::default()
                }
            ),
            Err(ServeError::Sim(SimError::UnknownSession(_)))
        ));
    }
}
