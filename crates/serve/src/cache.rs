//! The content-addressed result cache with single-flight deduplication.
//!
//! The cache is keyed by [`SimRequest::digest`](aurora_core::SimRequest::digest):
//! reports are deterministic pure functions of their request (the
//! engine's §VI-A op/access counting plus the worker pool's ordered-
//! gather contract), so a digest hit returns the *exact* report a fresh
//! run would produce. Eviction is FIFO with a bounded capacity, the same
//! policy as the engine's route-table and tile-profile caches.
//!
//! Single-flight: when several clients ask for the same digest
//! concurrently, exactly one (the *leader*) runs the engine; the others
//! (*followers*) park on the flight and are woken with the shared
//! result. Followers therefore count as cache hits — no engine work was
//! done on their behalf.

use crate::error::ServeError;
use crate::observe::JobTiming;
use aurora_core::SimReport;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One in-flight simulation, shared between its leader and any
/// followers. The leader resolves it exactly once.
pub struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

enum FlightState {
    Pending,
    Done {
        result: Result<Arc<SimReport>, ServeError>,
        /// Queue-wait/execute split measured by whoever ran the job.
        timing: JobTiming,
    },
}

impl Flight {
    fn new() -> Self {
        Self {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }

    /// Resolves the flight and wakes every waiter. Idempotent only by
    /// construction: the cache guarantees one resolver per flight.
    fn resolve(&self, result: Result<Arc<SimReport>, ServeError>, timing: JobTiming) {
        let mut st = self.state.lock().unwrap();
        *st = FlightState::Done { result, timing };
        self.done.notify_all();
    }

    /// Blocks until the flight resolves or `timeout` elapses. A timeout
    /// abandons only this waiter — the flight itself keeps running and
    /// still warms the cache when it lands.
    pub fn wait(&self, timeout: Duration) -> Result<Arc<SimReport>, ServeError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        loop {
            if let FlightState::Done { result, .. } = &*st {
                return result.clone();
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServeError::Timeout {
                    ms: timeout.as_millis() as u64,
                });
            }
            let (next, wait) = self.done.wait_timeout(st, deadline - now).unwrap();
            st = next;
            if wait.timed_out() {
                if let FlightState::Done { result, .. } = &*st {
                    return result.clone();
                }
                return Err(ServeError::Timeout {
                    ms: timeout.as_millis() as u64,
                });
            }
        }
    }

    /// Non-blocking probe of the flight's state.
    pub fn poll(&self) -> Option<Result<Arc<SimReport>, ServeError>> {
        match &*self.state.lock().unwrap() {
            FlightState::Pending => None,
            FlightState::Done { result, .. } => Some(result.clone()),
        }
    }

    /// The resolved flight's queue-wait/execute split; `None` while
    /// pending.
    pub fn timing(&self) -> Option<JobTiming> {
        match &*self.state.lock().unwrap() {
            FlightState::Pending => None,
            FlightState::Done { timing, .. } => Some(*timing),
        }
    }
}

/// The outcome of a cache lookup.
pub enum Lookup {
    /// The report was ready; no engine work needed.
    Hit(Arc<SimReport>),
    /// An identical request is already simulating — wait on its flight.
    Join(Arc<Flight>),
    /// This caller leads: it must run the engine and [`ResultCache::complete`]
    /// (or [`ResultCache::abort`]) the returned flight.
    Lead(Arc<Flight>),
}

struct CacheState {
    ready: HashMap<String, Arc<SimReport>>,
    /// Insertion order of `ready`, for FIFO eviction.
    order: VecDeque<String>,
    inflight: HashMap<String, Arc<Flight>>,
}

/// Bounded digest → report cache. All structural mutation happens under
/// one mutex; the engine runs outside it.
pub struct ResultCache {
    state: Mutex<CacheState>,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` ready reports (in-flight
    /// entries are not counted — they are bounded by the admission
    /// queue). `capacity` 0 disables retention: every request leads.
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(CacheState {
                ready: HashMap::new(),
                order: VecDeque::new(),
                inflight: HashMap::new(),
            }),
            capacity,
        }
    }

    /// Looks `digest` up, joining an in-flight run when one exists, and
    /// otherwise registering the caller as leader.
    pub fn lookup(&self, digest: &str) -> Lookup {
        let mut st = self.state.lock().unwrap();
        if let Some(report) = st.ready.get(digest) {
            return Lookup::Hit(Arc::clone(report));
        }
        if let Some(flight) = st.inflight.get(digest) {
            return Lookup::Join(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        st.inflight.insert(digest.to_string(), Arc::clone(&flight));
        Lookup::Lead(flight)
    }

    /// Resolves a led flight: stores a success in the FIFO (evicting the
    /// oldest entry past capacity), wakes all followers with the shared
    /// result and the measured `timing`, and retires the flight. Errors
    /// are delivered to waiters but never cached — a later identical
    /// request retries.
    pub fn complete(&self, digest: &str, result: Result<SimReport, ServeError>, timing: JobTiming) {
        let shared = result.map(Arc::new);
        let mut st = self.state.lock().unwrap();
        if let Ok(report) = &shared {
            if self.capacity > 0 {
                // Residency first: re-completing a digest that is
                // already ready (two leaders can race across an
                // eviction window) replaces the entry in place — the
                // map does not grow, so evicting an unrelated live
                // entry for it would be a pure loss.
                if st.ready.contains_key(digest) {
                    st.ready.insert(digest.to_string(), Arc::clone(report));
                } else {
                    while st.ready.len() >= self.capacity {
                        match st.order.pop_front() {
                            Some(old) => {
                                st.ready.remove(&old);
                            }
                            None => break,
                        }
                    }
                    st.ready.insert(digest.to_string(), Arc::clone(report));
                    st.order.push_back(digest.to_string());
                }
            }
        }
        let flight = st.inflight.remove(digest);
        drop(st);
        if let Some(flight) = flight {
            flight.resolve(shared, timing);
        }
    }

    /// Retires a led flight without running it (admission failed after
    /// leadership was taken). Followers that joined in the window get
    /// `err`; the digest becomes leadable again.
    pub fn abort(&self, digest: &str, err: ServeError) {
        let flight = self.state.lock().unwrap().inflight.remove(digest);
        if let Some(flight) = flight {
            flight.resolve(Err(err), JobTiming::default());
        }
    }

    /// Number of ready (completed) entries.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().ready.len()
    }

    /// Whether no completed entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_core::{AcceleratorConfig, AuroraSimulator, SimReport, SimRequest};
    use aurora_graph::generate;
    use aurora_model::{LayerShape, ModelId};

    fn report(tag: &str) -> SimReport {
        let cfg = AcceleratorConfig::small(2);
        let req = SimRequest::builder(ModelId::Gcn)
            .config(cfg)
            .inline_graph(generate::ring(8))
            .layer(LayerShape::new(4, 2))
            .workload(tag)
            .build()
            .unwrap();
        AuroraSimulator::new(cfg).run(&req).unwrap()
    }

    #[test]
    fn hit_after_complete() {
        let cache = ResultCache::new(4);
        let Lookup::Lead(_) = cache.lookup("a") else {
            panic!("first sight must lead");
        };
        cache.complete("a", Ok(report("a")), JobTiming::default());
        match cache.lookup("a") {
            Lookup::Hit(r) => assert_eq!(r.workload, "a"),
            _ => panic!("completed digest must hit"),
        }
    }

    #[test]
    fn concurrent_lookups_single_flight() {
        let cache = ResultCache::new(4);
        let leader = match cache.lookup("d") {
            Lookup::Lead(f) => f,
            _ => panic!("expected lead"),
        };
        let follower = match cache.lookup("d") {
            Lookup::Join(f) => f,
            _ => panic!("expected join"),
        };
        assert!(follower.poll().is_none());
        assert!(follower.timing().is_none(), "pending flight has no timing");
        cache.complete(
            "d",
            Ok(report("d")),
            JobTiming {
                queue_wait_us: 3,
                execute_us: 9,
            },
        );
        let got = follower.wait(Duration::from_secs(1)).unwrap();
        assert_eq!(got.workload, "d");
        assert_eq!(
            follower.timing(),
            Some(JobTiming {
                queue_wait_us: 3,
                execute_us: 9,
            }),
            "timing rides the resolved flight"
        );
        drop(leader);
    }

    #[test]
    fn fifo_eviction_is_bounded() {
        let cache = ResultCache::new(2);
        for d in ["a", "b", "c"] {
            let Lookup::Lead(_) = cache.lookup(d) else {
                panic!("lead {d}");
            };
            cache.complete(d, Ok(report(d)), JobTiming::default());
        }
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup("a"), Lookup::Lead(_)), "a evicted");
        assert!(matches!(cache.lookup("b"), Lookup::Hit(_)));
        assert!(matches!(cache.lookup("c"), Lookup::Hit(_)));
    }

    #[test]
    fn errors_are_delivered_but_not_cached() {
        let cache = ResultCache::new(4);
        let Lookup::Lead(f) = cache.lookup("x") else {
            panic!("lead");
        };
        cache.complete("x", Err(ServeError::ShuttingDown), JobTiming::default());
        assert_eq!(
            f.wait(Duration::from_secs(1)).unwrap_err(),
            ServeError::ShuttingDown
        );
        assert!(cache.is_empty());
        assert!(matches!(cache.lookup("x"), Lookup::Lead(_)), "retryable");
    }

    #[test]
    fn wait_times_out_on_pending_flight() {
        let cache = ResultCache::new(4);
        let Lookup::Lead(f) = cache.lookup("slow") else {
            panic!("lead");
        };
        let err = f.wait(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, ServeError::Timeout { .. }));
        // the flight is still live: completing it after the timeout works
        cache.complete("slow", Ok(report("slow")), JobTiming::default());
        assert!(matches!(cache.lookup("slow"), Lookup::Hit(_)));
    }

    /// Regression: re-completing a digest that is already resident must
    /// not run the eviction loop — the insert does not grow the map, so
    /// evicting an unrelated live entry for it loses a warm report.
    #[test]
    fn recompleting_resident_digest_evicts_nothing() {
        let cache = ResultCache::new(2);
        for d in ["a", "b"] {
            let Lookup::Lead(_) = cache.lookup(d) else {
                panic!("lead {d}");
            };
            cache.complete(d, Ok(report(d)), JobTiming::default());
        }
        assert_eq!(cache.len(), 2, "cache is exactly full");
        // a second leader for "a" (raced past an eviction window)
        // completes while "a" is still resident
        cache.complete("a", Ok(report("a")), JobTiming::default());
        assert_eq!(cache.len(), 2);
        assert!(
            matches!(cache.lookup("b"), Lookup::Hit(_)),
            "unrelated entry b must survive a re-completion of a"
        );
        assert!(matches!(cache.lookup("a"), Lookup::Hit(_)));
        // FIFO order is undisturbed: the next fresh insert evicts the
        // oldest ("a"), not "b"
        let Lookup::Lead(_) = cache.lookup("c") else {
            panic!("lead c");
        };
        cache.complete("c", Ok(report("c")), JobTiming::default());
        assert!(matches!(cache.lookup("a"), Lookup::Lead(_)), "a evicted");
        assert!(matches!(cache.lookup("b"), Lookup::Hit(_)));
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let cache = ResultCache::new(0);
        let Lookup::Lead(_) = cache.lookup("a") else {
            panic!("lead");
        };
        cache.complete("a", Ok(report("a")), JobTiming::default());
        assert!(cache.is_empty());
        assert!(matches!(cache.lookup("a"), Lookup::Lead(_)));
    }

    #[test]
    fn abort_unparks_followers_and_releases_digest() {
        let cache = ResultCache::new(4);
        let Lookup::Lead(_) = cache.lookup("q") else {
            panic!("lead");
        };
        let Lookup::Join(follower) = cache.lookup("q") else {
            panic!("join");
        };
        cache.abort(
            "q",
            ServeError::Overloaded {
                queued: 1,
                capacity: 1,
            },
        );
        assert!(matches!(
            follower.wait(Duration::from_secs(1)).unwrap_err(),
            ServeError::Overloaded { .. }
        ));
        assert!(matches!(cache.lookup("q"), Lookup::Lead(_)));
    }
}
