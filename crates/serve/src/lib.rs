//! `aurora-serve` — a concurrent simulation service in front of the
//! Aurora engine.
//!
//! The ROADMAP's north star is a system that serves heavy traffic; this
//! crate is the serving layer. A long-running daemon ([`bin/aurora_serve`])
//! speaks newline-delimited JSON over a Unix socket or TCP: each line is
//! a [`ServeRequest`] envelope carrying a serializable
//! [`SimRequest`](aurora_core::SimRequest), each reply a
//! [`SimResponse`](aurora_core::SimResponse).
//!
//! Three layers, each independently testable:
//!
//! * [`cache`] — the bounded content-addressed result cache
//!   (request digest → [`SimReport`](aurora_core::SimReport), FIFO
//!   eviction, single-flight deduplication). Reports are deterministic
//!   pure functions of their request, so cached answers are exact.
//! * [`service`] — admission control and scheduling: a bounded queue in
//!   front of a worker pool, per-request timeouts, typed
//!   [`ServeError::Overloaded`] rejection instead of blocking, graceful
//!   drain, and `serve.*` telemetry.
//! * [`server`] — the NDJSON transport (listener, protocol loop, and a
//!   blocking [`Client`]).

pub mod cache;
pub mod error;
pub mod server;
pub mod service;

pub use cache::{Flight, Lookup, ResultCache};
pub use error::ServeError;
pub use server::{respond, serve, Client, Endpoint, ServeRequest};
pub use service::{ServeConfig, ServeOutcome, SimService};
