//! `aurora-serve` — a concurrent simulation service in front of the
//! Aurora engine.
//!
//! The ROADMAP's north star is a system that serves heavy traffic; this
//! crate is the serving layer. A long-running daemon ([`bin/aurora_serve`])
//! speaks newline-delimited JSON over a Unix socket or TCP: each line is
//! a [`ServeRequest`] envelope carrying a serializable
//! [`SimRequest`](aurora_core::SimRequest), each reply a
//! [`SimResponse`](aurora_core::SimResponse).
//!
//! Five layers, each independently testable:
//!
//! * [`cache`] — the bounded content-addressed result cache
//!   (request digest → [`SimReport`](aurora_core::SimReport), FIFO
//!   eviction, single-flight deduplication). Reports are deterministic
//!   pure functions of their request, so cached answers are exact.
//! * [`service`] — admission control and scheduling: a bounded queue in
//!   front of a worker pool, per-request timeouts, typed
//!   [`ServeError::Overloaded`] rejection instead of blocking, graceful
//!   drain, and `serve.*` telemetry.
//! * [`server`] — the NDJSON transport (listener, protocol loop, and a
//!   blocking [`Client`]).
//! * [`observe`] — the per-request observability plane: the structured
//!   access log behind the pluggable [`EventLog`] sink and the bounded
//!   [`FlightRecorder`] of slow/error requests.
//! * [`admin`] — the in-band introspection commands (`health`, `stats`,
//!   `metrics`, `flights`) answered on the same socket.
//!
//! Scale-out adds two more:
//!
//! * [`backend`] — one worker shard as seen by the router: health
//!   state, a small connection pool, and (for supervised workers)
//!   process lifecycle with bounded-backoff respawn.
//! * [`router`] — the sharding front-end: rendezvous digest-affinity
//!   placement, health-aware failover, and aggregated admin
//!   introspection, behind the same [`LineHandler`] transport as a
//!   single worker.

pub mod admin;
pub mod backend;
pub mod cache;
pub mod error;
pub mod observe;
pub mod router;
pub mod server;
pub mod service;
pub mod sessions;

pub use backend::{
    Backend, BackendHealth, ProcessLauncher, ThreadLauncher, WorkerHandle, WorkerLauncher,
};
pub use cache::{Flight, Lookup, ResultCache};
pub use error::ServeError;
pub use observe::{
    AccessRecord, EventLog, FileLog, FlightProfile, FlightRecord, FlightRecorder, JobTiming,
    MemoryLog, NullLog, Outcome, StderrLog,
};
pub use router::{ClusterStats, RouteRecord, Router, RouterConfig, RouterTotals};
pub use server::{
    answer, respond, serve, serve_with, Client, ClientOptions, Endpoint, LineHandler, ServeRequest,
    ServerOptions, SessionLine,
};
pub use service::{LatencySummary, ServeConfig, ServeOutcome, ServiceStats, SimService};
pub use sessions::{SessionReply, SessionTable};
