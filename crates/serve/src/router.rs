//! The cluster front-end: shards sim requests across worker daemons
//! with digest-affinity routing, health-aware failover, and aggregated
//! admin introspection.
//!
//! Topology: one router process speaks the same NDJSON protocol as a
//! single worker — clients cannot tell the difference — and forwards
//! each sim line to one of N [`Backend`] shards over the existing
//! [`Client`]. Placement is **rendezvous (highest-random-weight)
//! hashing** of the request's content digest against each shard's
//! stable name: identical requests always land on the same worker, so
//! its content-addressed `ResultCache` stays warm (the serving-layer
//! analogue of the accelerator's locality-aware tile mapping), and
//! when a shard dies only *its* digests move — the survivors' cache
//! residency is untouched, which a mod-N scheme cannot promise.
//!
//! Failure model, in increasing severity:
//!
//! * **Stale pooled connection** (worker restarted): retried once on a
//!   fresh connection to the *same* shard — affinity is preserved.
//! * **Connection failure / worker answered `shutting_down` or
//!   `overloaded`**: the shard is marked down (resp. draining) and the
//!   request retries on the next-best shard by rendezvous order, each
//!   shard at most once. A killed worker therefore costs zero
//!   client-visible errors while its digests re-warm elsewhere.
//! * **Router-level read deadline**: surfaced to the client as a typed
//!   `timeout` — *not* retried, because the worker may still be
//!   computing (its own per-request timeout answers first in the
//!   normal case) and duplicating a long run on another shard would
//!   double the cluster's work.
//! * **No routable shard**: a typed `unavailable` error.
//!
//! The prober thread re-checks every shard each `probe_interval` via
//! `{"admin":"health"}` and respawns supervised workers under bounded
//! exponential backoff (see [`Backend::probe_and_heal`]).
//!
//! Admin on the router socket: `health` answers locally with per-shard
//! states; `stats` fans out to every live shard and returns the
//! aggregate (sums for counters, element-wise maxima for latency
//! quantiles — which preserves p50 ≤ p95 ≤ p99) alongside each shard's
//! raw stats body.

use crate::backend::{Backend, BackendHealth};
use crate::error::ServeError;
use crate::observe::{EventLog, NullLog};
use crate::server::{recover_id, ClientOptions, LineHandler, ServeRequest};
use aurora_core::{SessionCommand, SimResponse};
use serde::Deserialize;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Router`].
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// How often the prober re-checks every shard.
    pub probe_interval: Duration,
    /// Budget for establishing any connection to a shard.
    pub connect_timeout: Duration,
    /// Read deadline for a forwarded response. Must comfortably exceed
    /// the workers' per-request `timeout_ms`, so the worker's own typed
    /// timeout answers first and the router deadline only catches a
    /// wedged peer.
    pub read_timeout: Duration,
    /// First respawn backoff step; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            probe_interval: Duration::from_millis(200),
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(60),
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
        }
    }
}

/// FNV-1a/64 — the same hash family as `SimRequest::digest`, applied to
/// `shard-name ∥ 0xff ∥ digest` for rendezvous scoring.
fn fnv1a64(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (i, p) in parts.iter().enumerate() {
        if i > 0 {
            eat(&[0xff]); // unambiguous separator: 0xff never occurs in hex/utf8 names used here
        }
        eat(p);
    }
    h
}

/// Murmur3's 64-bit avalanche finalizer. Raw FNV is too linear for
/// rendezvous comparison — with a shared digest suffix the inter-shard
/// score *differences* are nearly digest-independent, so one shard wins
/// almost every digest. The finalizer makes the ordering pseudorandom
/// per digest while staying a pure function.
fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// The rendezvous score of `digest` on the shard called `name`. Pure
/// and stable: affinity survives router restarts because it depends
/// only on the two strings.
pub fn hrw_score(name: &str, digest: &str) -> u64 {
    fmix64(fnv1a64(&[name.as_bytes(), digest.as_bytes()]))
}

/// One router access-log line: where a sim request went and how.
#[derive(Debug, Clone, Serialize)]
pub struct RouteRecord {
    /// Monotonic per-router request number (1-based).
    pub seq: u64,
    /// Request digest ("" when the line never parsed).
    pub digest: String,
    /// Shard that answered ("" when none did).
    pub shard: String,
    /// `ok` | `failover` (ok after ≥1 retry) | `timeout` | `reject`
    /// (router draining) | `error` (bad line) | `unavailable`.
    pub outcome: String,
    /// Forward attempts beyond the first.
    pub retries: u64,
    /// End-to-end router latency, µs.
    pub latency_us: u64,
    /// Response line size, newline included.
    pub bytes_out: u64,
}

/// Live routing counters for the `stats` admin reply.
#[derive(Debug, Clone, Serialize)]
pub struct RouterTotals {
    /// Sim lines routed (admin traffic excluded).
    pub routed: u64,
    /// Forward attempts beyond the first, summed.
    pub retries: u64,
    /// Requests that succeeded only after moving to another shard.
    pub failovers: u64,
    /// Requests answered `unavailable` (no routable shard).
    pub unavailable: u64,
    pub shards: u64,
    pub healthy: u64,
}

/// The cluster-wide stats aggregate: counter fields are sums over the
/// live shards, latency quantiles are element-wise maxima (an upper
/// bound per quantile that keeps p50 ≤ p95 ≤ p99 ordered), `hit_ratio`
/// is recomputed from the summed hits and misses.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ClusterStats {
    pub status: String,
    pub shards_reporting: u64,
    pub requests: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub hit_ratio: f64,
    pub cache_size: u64,
    pub inflight: u64,
    pub queued: u64,
    pub rejects: u64,
    pub timeouts: u64,
    pub errors: u64,
    pub latency_us: QuantileBound,
    pub queue_wait_us: QuantileBound,
}

/// Element-wise upper bound of per-shard latency digests.
#[derive(Debug, Clone, Default, Serialize)]
pub struct QuantileBound {
    /// Samples across all shards (summed).
    pub count: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

impl QuantileBound {
    fn absorb(&mut self, stats: &serde_json::Value, field: &str) {
        let at = |key: &str| {
            stats
                .get(field)
                .and_then(|v| v.get(key))
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
        };
        self.count += at("count");
        self.p50_us = self.p50_us.max(at("p50_us"));
        self.p95_us = self.p95_us.max(at("p95_us"));
        self.p99_us = self.p99_us.max(at("p99_us"));
        self.max_us = self.max_us.max(at("max_us"));
    }
}

#[derive(Debug, Serialize)]
struct ShardHealth {
    name: String,
    endpoint: String,
    health: String,
    pid: Option<u32>,
    respawns: u64,
}

#[derive(Debug, Serialize)]
struct RouterHealthReply {
    id: u64,
    admin: String,
    /// `ok`, or `draining` once shutdown started — same field the
    /// single-process daemon answers, so pollers need no special case.
    status: String,
    role: String,
    uptime_us: u64,
    shards: Vec<ShardHealth>,
}

#[derive(Debug, Serialize)]
struct ShardStats {
    name: String,
    health: String,
    /// The shard's raw `ServiceStats` body; `None` when it could not be
    /// scraped this instant.
    stats: Option<serde_json::Value>,
}

#[derive(Debug, Serialize)]
struct RouterStatsReply {
    id: u64,
    admin: String,
    role: String,
    router: RouterTotals,
    /// The cluster aggregate, shaped like a `ServiceStats` where
    /// summation makes sense.
    stats: ClusterStats,
    shards: Vec<ShardStats>,
}

/// The sharding front-end. Implements [`LineHandler`], so
/// [`serve_with`](crate::server::serve_with) hosts it exactly like a
/// [`SimService`](crate::service::SimService).
pub struct Router {
    backends: Vec<Arc<Backend>>,
    config: RouterConfig,
    draining: AtomicBool,
    started: Instant,
    seq: AtomicU64,
    routed: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    unavailable: AtomicU64,
    access_log: Arc<dyn EventLog>,
    prober_stop: Arc<AtomicBool>,
    prober: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Router {
    /// Builds a router over `backends` (not yet started — call
    /// [`Router::start`]).
    pub fn new(backends: Vec<Arc<Backend>>, config: RouterConfig) -> Self {
        Self::with_access_log(backends, config, Arc::new(NullLog))
    }

    /// [`Router::new`] with a route-record sink (one NDJSON
    /// [`RouteRecord`] per sim line, admin traffic excluded).
    pub fn with_access_log(
        backends: Vec<Arc<Backend>>,
        config: RouterConfig,
        access_log: Arc<dyn EventLog>,
    ) -> Self {
        Self {
            backends,
            config,
            draining: AtomicBool::new(false),
            started: Instant::now(),
            seq: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            unavailable: AtomicU64::new(0),
            access_log,
            prober_stop: Arc::new(AtomicBool::new(false)),
            prober: Mutex::new(None),
        }
    }

    /// The shards, in construction order.
    pub fn backends(&self) -> &[Arc<Backend>] {
        &self.backends
    }

    /// Launches supervised workers and starts the prober thread.
    pub fn start(self: &Arc<Self>) -> Result<(), ServeError> {
        for b in &self.backends {
            b.start()?;
        }
        let me = Arc::clone(self);
        let stop = Arc::clone(&self.prober_stop);
        let handle = std::thread::Builder::new()
            .name("router-prober".into())
            .spawn(move || {
                let opts = me.probe_options();
                while !stop.load(Ordering::SeqCst) {
                    for b in &me.backends {
                        b.probe_and_heal(opts, me.config.backoff_base, me.config.backoff_cap);
                    }
                    // sleep in short steps so drain never waits long on us
                    let deadline = Instant::now() + me.config.probe_interval;
                    while Instant::now() < deadline && !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            })
            .map_err(|e| ServeError::Io(format!("spawn prober: {e}")))?;
        *self.prober.lock().expect("prober handle") = Some(handle);
        Ok(())
    }

    /// Blocks until every shard probes healthy, or `budget` elapses.
    /// Returns the number of healthy shards either way. Requires
    /// [`Router::start`] (the prober does the probing).
    pub fn wait_ready(&self, budget: Duration) -> usize {
        let deadline = Instant::now() + budget;
        loop {
            let healthy = self
                .backends
                .iter()
                .filter(|b| b.health() == BackendHealth::Ok)
                .count();
            if healthy == self.backends.len() || Instant::now() >= deadline {
                return healthy;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn probe_options(&self) -> ClientOptions {
        ClientOptions {
            connect_timeout: Some(self.config.connect_timeout),
            // health replies are tiny; the connect budget is plenty
            read_timeout: Some(self.config.connect_timeout),
        }
    }

    fn forward_options(&self) -> ClientOptions {
        ClientOptions {
            connect_timeout: Some(self.config.connect_timeout),
            read_timeout: Some(self.config.read_timeout),
        }
    }

    /// True once [`Router::drain`] has started.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The shard `digest` routes to right now (highest rendezvous score
    /// among routable shards), or `None` when none is routable.
    pub fn shard_for(&self, digest: &str) -> Option<&str> {
        self.pick(digest, &[])
            .map(|i| self.backends[i].name.as_str())
    }

    /// Rendezvous winner among routable shards, skipping `excluded`.
    fn pick(&self, digest: &str, excluded: &[usize]) -> Option<usize> {
        self.backends
            .iter()
            .enumerate()
            .filter(|(i, b)| !excluded.contains(i) && b.health().routable())
            .max_by_key(|(_, b)| hrw_score(&b.name, digest))
            .map(|(i, _)| i)
    }

    /// One forward attempt against one shard. A stale pooled connection
    /// is retried once on a fresh connection to the same shard;
    /// timeouts and fresh-connection failures propagate.
    fn forward(&self, backend: &Backend, line: &str) -> Result<String, ServeError> {
        if let Some(mut client) = backend.checkout() {
            match client.roundtrip(line) {
                Ok(reply) => {
                    backend.checkin(client);
                    return Ok(reply);
                }
                // a timed-out connection has a response in flight we
                // will never read — drop it, and don't mask the timeout
                Err(e @ ServeError::Timeout { .. }) => return Err(e),
                // stale pooled stream (worker restarted): fall through
                // to a fresh connection, same shard
                Err(_) => {}
            }
        }
        let mut client = Client::connect_with(&backend.endpoint, self.forward_options())?;
        let reply = client.roundtrip(line)?;
        backend.checkin(client);
        Ok(reply)
    }

    /// Routes one sim line: parse for the digest, pick by rendezvous,
    /// forward with at-most-once-per-shard retries, answer locally only
    /// when nothing can.
    fn route_sim(&self, line: &str) -> String {
        let started = Instant::now();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.routed.fetch_add(1, Ordering::Relaxed);

        if self.is_draining() {
            let reply = SimResponse::err(recover_id(line), "", ServeError::ShuttingDown.to_wire());
            return self.finish(
                seq,
                String::new(),
                String::new(),
                "reject",
                0,
                started,
                &reply,
            );
        }
        // Session lines route by the command's pinned digest: `d₀` for
        // every op of one session (open derives it from the base
        // request, delta/close carry it as `sid`), so the whole session
        // rendezvous-hashes to the shard holding its warm state.
        let id;
        let digest = if let Some(session) = serde_json::from_str::<serde_json::Value>(line)
            .ok()
            .and_then(|v| v.get("session").cloned())
        {
            id = recover_id(line);
            let routed = SessionCommand::from_value(&session)
                .map_err(|e| ServeError::BadRequest(format!("unparseable session line: {e:?}")))
                .and_then(|cmd| cmd.routing_digest().map_err(ServeError::Sim));
            match routed {
                Ok(digest) => digest,
                Err(err) => {
                    let reply = SimResponse::err(id, "", err.to_wire());
                    return self.finish(
                        seq,
                        String::new(),
                        String::new(),
                        "error",
                        0,
                        started,
                        &reply,
                    );
                }
            }
        } else {
            let parsed: Result<ServeRequest, _> = serde_json::from_str(line);
            match parsed {
                Ok(req) => {
                    id = req.id;
                    req.sim.digest()
                }
                Err(e) => {
                    let err = ServeError::BadRequest(format!("unparseable request: {e:?}"));
                    let reply = SimResponse::err(recover_id(line), "", err.to_wire());
                    return self.finish(
                        seq,
                        String::new(),
                        String::new(),
                        "error",
                        0,
                        started,
                        &reply,
                    );
                }
            }
        };

        let mut excluded: Vec<usize> = Vec::new();
        let mut last_error: Option<ServeError> = None;
        loop {
            let Some(i) = self.pick(&digest, &excluded) else {
                self.unavailable.fetch_add(1, Ordering::Relaxed);
                let err = last_error.take().unwrap_or_else(|| {
                    ServeError::Unavailable(format!(
                        "none of {} shard(s) routable",
                        self.backends.len()
                    ))
                });
                let err = match err {
                    // a shard-level timeout stays a timeout; everything
                    // else collapses to unavailable for the client
                    e @ ServeError::Timeout { .. } => e,
                    e => ServeError::Unavailable(e.to_string()),
                };
                let reply = SimResponse::err(id, digest.clone(), err.to_wire());
                let outcome = if matches!(err, ServeError::Timeout { .. }) {
                    "timeout"
                } else {
                    "unavailable"
                };
                return self.finish(
                    seq,
                    digest,
                    String::new(),
                    outcome,
                    excluded.len() as u64,
                    started,
                    &reply,
                );
            };
            let backend = &self.backends[i];
            match self.forward(backend, line) {
                Ok(reply_line) => {
                    // Application-level failover: a shard that is
                    // draining or saturated answered, but another shard
                    // can still serve the request.
                    match reply_error_kind(&reply_line) {
                        Some("shutting_down") => {
                            backend.mark_draining();
                            excluded.push(i);
                            self.retries.fetch_add(1, Ordering::Relaxed);
                            last_error = Some(ServeError::ShuttingDown);
                            continue;
                        }
                        Some("overloaded") => {
                            excluded.push(i);
                            self.retries.fetch_add(1, Ordering::Relaxed);
                            last_error = Some(ServeError::Overloaded {
                                queued: 0,
                                capacity: 0,
                            });
                            continue;
                        }
                        _ => {}
                    }
                    let outcome = if excluded.is_empty() {
                        "ok"
                    } else {
                        "failover"
                    };
                    if !excluded.is_empty() {
                        self.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    return self.finish_raw(
                        seq,
                        digest,
                        backend.name.clone(),
                        outcome,
                        excluded.len() as u64,
                        started,
                        reply_line,
                    );
                }
                Err(e @ ServeError::Timeout { .. }) => {
                    // the worker may still be computing; don't duplicate
                    // the run elsewhere — surface the timeout
                    let reply = SimResponse::err(id, digest.clone(), e.to_wire());
                    return self.finish(
                        seq,
                        digest,
                        backend.name.clone(),
                        "timeout",
                        excluded.len() as u64,
                        started,
                        &reply,
                    );
                }
                Err(e) => {
                    backend.mark_down();
                    excluded.push(i);
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    last_error = Some(e);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        seq: u64,
        digest: String,
        shard: String,
        outcome: &str,
        retries: u64,
        started: Instant,
        reply: &SimResponse,
    ) -> String {
        let line = serde_json::to_string(reply).expect("response serializes");
        self.finish_raw(seq, digest, shard, outcome, retries, started, line)
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_raw(
        &self,
        seq: u64,
        digest: String,
        shard: String,
        outcome: &str,
        retries: u64,
        started: Instant,
        line: String,
    ) -> String {
        if self.access_log.enabled() {
            let record = RouteRecord {
                seq,
                digest,
                shard,
                outcome: outcome.to_string(),
                retries,
                latency_us: started.elapsed().as_micros() as u64,
                bytes_out: line.len() as u64 + 1,
            };
            self.access_log
                .emit(&serde_json::to_string(&record).expect("route record serializes"));
        }
        line
    }

    /// Routing counters plus shard census.
    pub fn totals(&self) -> RouterTotals {
        RouterTotals {
            routed: self.routed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            unavailable: self.unavailable.load(Ordering::Relaxed),
            shards: self.backends.len() as u64,
            healthy: self
                .backends
                .iter()
                .filter(|b| b.health() == BackendHealth::Ok)
                .count() as u64,
        }
    }

    fn admin_dispatch(&self, request: &serde_json::Value) -> String {
        let id = request.get("id").and_then(|v| v.as_u64()).unwrap_or(0);
        let command = request
            .get("admin")
            .and_then(|v| v.as_str())
            .unwrap_or_default();
        let reply = match command {
            "health" => serde_json::to_string(&RouterHealthReply {
                id,
                admin: command.to_string(),
                status: if self.is_draining() { "draining" } else { "ok" }.to_string(),
                role: "router".to_string(),
                uptime_us: self.started.elapsed().as_micros() as u64,
                shards: self
                    .backends
                    .iter()
                    .map(|b| ShardHealth {
                        name: b.name.clone(),
                        endpoint: b.endpoint.to_string(),
                        health: b.health().label().to_string(),
                        pid: b.pid(),
                        respawns: b.respawns(),
                    })
                    .collect(),
            }),
            "stats" => {
                let (aggregate, shards) = self.aggregate_stats();
                serde_json::to_string(&RouterStatsReply {
                    id,
                    admin: command.to_string(),
                    role: "router".to_string(),
                    router: self.totals(),
                    stats: aggregate,
                    shards,
                })
            }
            other => serde_json::to_string(&SimResponse::err(
                id,
                "",
                ServeError::BadRequest(format!(
                    "admin command `{other}` is not served by the router \
                     (it has: health, stats; scrape workers directly for \
                     metrics and flights)"
                ))
                .to_wire(),
            )),
        };
        reply.expect("router admin reply serializes")
    }

    /// Scrapes `{"admin":"stats"}` from every non-down shard and folds
    /// the bodies into a [`ClusterStats`].
    fn aggregate_stats(&self) -> (ClusterStats, Vec<ShardStats>) {
        let mut agg = ClusterStats {
            status: if self.is_draining() { "draining" } else { "ok" }.to_string(),
            ..ClusterStats::default()
        };
        let mut shards = Vec::with_capacity(self.backends.len());
        for b in &self.backends {
            let health = b.health();
            let body = if health == BackendHealth::Down {
                None
            } else {
                self.forward(b, "{\"admin\":\"stats\"}")
                    .ok()
                    .and_then(|line| serde_json::from_str::<serde_json::Value>(&line).ok())
                    .and_then(|reply| reply.get("stats").cloned())
            };
            if let Some(stats) = &body {
                let at = |key: &str| stats.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
                agg.shards_reporting += 1;
                agg.requests += at("requests");
                agg.cache_hits += at("cache_hits");
                agg.cache_misses += at("cache_misses");
                agg.cache_size += at("cache_size");
                agg.inflight += at("inflight");
                agg.queued += at("queued");
                agg.rejects += at("rejects");
                agg.timeouts += at("timeouts");
                agg.errors += at("errors");
                agg.latency_us.absorb(stats, "latency_us");
                agg.queue_wait_us.absorb(stats, "queue_wait_us");
            }
            shards.push(ShardStats {
                name: b.name.clone(),
                health: health.label().to_string(),
                stats: body,
            });
        }
        let answered = agg.cache_hits + agg.cache_misses;
        agg.hit_ratio = if answered == 0 {
            0.0
        } else {
            agg.cache_hits as f64 / answered as f64
        };
        (agg, shards)
    }

    /// Graceful cluster shutdown: stop routing (new sim lines answer
    /// `shutting_down`), stop the prober, then terminate every
    /// supervised worker and wait for each to finish draining its
    /// in-flight requests. Idempotent.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.prober_stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.prober.lock().expect("prober handle").take() {
            let _ = handle.join();
        }
        for b in &self.backends {
            b.stop();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.drain();
    }
}

impl LineHandler for Router {
    fn answer_line(&self, line: &str) -> String {
        if let Ok(value) = serde_json::from_str::<serde_json::Value>(line) {
            if value.get("admin").is_some() {
                return self.admin_dispatch(&value);
            }
        }
        self.route_sim(line)
    }

    fn drain(&self) {
        Router::drain(self)
    }
}

/// The `error.kind` of a response line, when it carries one.
fn reply_error_kind(line: &str) -> Option<&'static str> {
    let value: serde_json::Value = serde_json::from_str(line).ok()?;
    let kind = value.get("error")?.get("kind")?.as_str()?;
    // normalize to 'static for the match sites; only the kinds the
    // router acts on are distinguished
    match kind {
        "shutting_down" => Some("shutting_down"),
        "overloaded" => Some("overloaded"),
        _ => Some("other"),
    }
}

use crate::server::Client;

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn router(names: &[&str]) -> Router {
        let backends = names
            .iter()
            .map(|n| {
                Arc::new(Backend::external(
                    *n,
                    Endpoint::Unix(PathBuf::from(format!("/tmp/aurora-hrw-{n}.sock"))),
                ))
            })
            .collect();
        Router::new(backends, RouterConfig::default())
    }

    use crate::server::Endpoint;

    #[test]
    fn hrw_scores_are_pure_functions() {
        assert_eq!(hrw_score("w0", "abc"), hrw_score("w0", "abc"));
        assert_ne!(hrw_score("w0", "abc"), hrw_score("w1", "abc"));
        assert_ne!(hrw_score("w0", "abc"), hrw_score("w0", "abd"));
        // separator keeps (name, digest) unambiguous
        assert_ne!(hrw_score("w", "0abc"), hrw_score("w0", "abc"));
    }

    #[test]
    fn placement_is_deterministic_and_covers_all_shards() {
        let a = router(&["w0", "w1", "w2"]);
        let b = router(&["w0", "w1", "w2"]);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..256 {
            let digest = format!("{i:016x}");
            let sa = a.shard_for(&digest).expect("routable").to_string();
            let sb = b.shard_for(&digest).expect("routable").to_string();
            assert_eq!(sa, sb, "same shards, same digest, same placement");
            seen.insert(sa);
        }
        assert_eq!(seen.len(), 3, "256 digests must spread over all 3 shards");
    }

    #[test]
    fn losing_a_shard_only_moves_its_own_digests() {
        let full = router(&["w0", "w1", "w2"]);
        let digests: Vec<String> = (0..256).map(|i| format!("{i:016x}")).collect();
        let before: Vec<String> = digests
            .iter()
            .map(|d| full.shard_for(d).unwrap().to_string())
            .collect();
        // take w1 out of the candidate set
        full.backends()[1].stop(); // marks it Down
        for (d, owner) in digests.iter().zip(&before) {
            let after = full.shard_for(d).unwrap();
            if owner != "w1" {
                assert_eq!(
                    after, owner,
                    "digest {d} moved off a surviving shard — rendezvous must not reshuffle"
                );
            } else {
                assert_ne!(after, "w1");
            }
        }
    }

    #[test]
    fn no_routable_shard_yields_none() {
        let r = router(&["w0"]);
        r.backends()[0].stop();
        assert!(r.shard_for("abc").is_none());
    }

    #[test]
    fn reply_error_kind_reads_the_wire_envelope() {
        assert_eq!(
            reply_error_kind(
                "{\"id\":1,\"digest\":\"\",\"cached\":false,\"report\":null,\
                 \"error\":{\"kind\":\"shutting_down\",\"message\":\"x\"}}"
            ),
            Some("shutting_down")
        );
        assert_eq!(
            reply_error_kind("{\"id\":1,\"error\":{\"kind\":\"sim\",\"message\":\"x\"}}"),
            Some("other")
        );
        assert_eq!(reply_error_kind("{\"id\":1,\"error\":null}"), None);
        assert_eq!(reply_error_kind("not json"), None);
    }
}
