//! The admin side of the NDJSON protocol: introspection commands on the
//! same socket the simulation traffic uses.
//!
//! A request line whose top-level object carries an `"admin"` key is an
//! admin command instead of a simulation envelope:
//!
//! ```text
//! → {"id": 3, "admin": "health"}
//! ← {"id": 3, "admin": "health", "status": "ok", "inflight": 2, ...}
//! ```
//!
//! Commands (the `id` is optional and echoes back, 0 by default):
//!
//! * `health` — readiness (`ok`/`draining`), inflight and queued counts,
//!   uptime. Cheap enough for a router's poll loop.
//! * `stats` — the full [`ServiceStats`]: cache size/hit-ratio, queue
//!   depth, p50/p95/p99 latency and queue-wait digests.
//! * `metrics` — the raw `MetricsSnapshot` plus its Prometheus text
//!   exposition ([`expo::render`]), ready for a scraper.
//! * `flights` — the flight recorder's retained slow/error requests.
//!
//! Unknown commands get a `bad_request` error response; admin traffic is
//! never access-logged (it would recursively inflate its own counters).

use crate::error::ServeError;
use crate::observe::FlightRecord;
use crate::service::{ServiceStats, SimService};
use aurora_core::{expo, MetricsSnapshot, SimResponse};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct HealthReply {
    id: u64,
    admin: String,
    /// `ok`, or `draining` once SIGTERM landed.
    status: String,
    inflight: u64,
    queued: u64,
    uptime_us: u64,
}

#[derive(Debug, Serialize)]
struct StatsReply {
    id: u64,
    admin: String,
    stats: ServiceStats,
}

#[derive(Debug, Serialize)]
struct MetricsReply {
    id: u64,
    admin: String,
    snapshot: MetricsSnapshot,
    /// Prometheus text exposition of `snapshot`.
    prometheus: String,
}

#[derive(Debug, Serialize)]
struct FlightsReply {
    id: u64,
    admin: String,
    slow_ms: u64,
    capacity: u64,
    flights: Vec<FlightRecord>,
}

/// Answers one admin line (already parsed far enough to see its
/// `"admin"` key). Returns the serialized response line.
pub fn dispatch(service: &SimService, request: &serde_json::Value) -> String {
    let id = request.get("id").and_then(|v| v.as_u64()).unwrap_or(0);
    let command = request
        .get("admin")
        .and_then(|v| v.as_str())
        .unwrap_or_default();
    let reply = match command {
        "health" => serde_json::to_string(&HealthReply {
            id,
            admin: command.to_string(),
            status: if service.is_draining() {
                "draining"
            } else {
                "ok"
            }
            .to_string(),
            inflight: service.inflight(),
            queued: service.queue_len() as u64,
            uptime_us: service.uptime().as_micros() as u64,
        }),
        "stats" => serde_json::to_string(&StatsReply {
            id,
            admin: command.to_string(),
            stats: service.stats(),
        }),
        "metrics" => {
            let snapshot = service.metrics();
            let prometheus = expo::render(&snapshot);
            serde_json::to_string(&MetricsReply {
                id,
                admin: command.to_string(),
                snapshot,
                prometheus,
            })
        }
        "flights" => serde_json::to_string(&FlightsReply {
            id,
            admin: command.to_string(),
            slow_ms: service.config().slow_ms,
            capacity: service.config().flight_capacity as u64,
            flights: service.flights(),
        }),
        other => serde_json::to_string(&SimResponse::err(
            id,
            "",
            ServeError::BadRequest(format!("unknown admin command `{other}`")).to_wire(),
        )),
    };
    reply.expect("admin reply serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use aurora_core::Telemetry;

    fn admin(service: &SimService, line: &str) -> serde_json::Value {
        let request: serde_json::Value = serde_json::from_str(line).expect("admin line parses");
        serde_json::from_str(&dispatch(service, &request)).expect("admin reply parses")
    }

    #[test]
    fn health_reports_ok_then_draining() {
        let svc = SimService::new(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            Telemetry::disabled(),
        );
        let reply = admin(&svc, "{\"id\": 3, \"admin\": \"health\"}");
        assert_eq!(reply.get("id").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(reply.get("status").and_then(|v| v.as_str()), Some("ok"));
        assert_eq!(reply.get("inflight").and_then(|v| v.as_u64()), Some(0));
        svc.drain();
        let reply = admin(&svc, "{\"admin\": \"health\"}");
        assert_eq!(
            reply.get("id").and_then(|v| v.as_u64()),
            Some(0),
            "id optional"
        );
        assert_eq!(
            reply.get("status").and_then(|v| v.as_str()),
            Some("draining")
        );
    }

    #[test]
    fn unknown_admin_command_is_bad_request() {
        let svc = SimService::new(
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            Telemetry::disabled(),
        );
        let reply = admin(&svc, "{\"id\": 9, \"admin\": \"reboot\"}");
        assert_eq!(reply.get("id").and_then(|v| v.as_u64()), Some(9));
        let error = reply.get("error").expect("error body");
        assert_eq!(
            error.get("kind").and_then(|v| v.as_str()),
            Some("bad_request")
        );
    }
}
