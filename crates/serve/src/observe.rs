//! The daemon's request-level observability: structured access log and
//! the flight recorder.
//!
//! Two complementary views of the same traffic:
//!
//! * the **access log** — one NDJSON [`AccessRecord`] per request,
//!   written through a pluggable [`EventLog`] sink ([`StderrLog`], a
//!   line-buffered [`FileLog`], or the default [`NullLog`]). Complete
//!   but shallow: id, digest, outcome, timing split, bytes out.
//! * the **flight recorder** — a bounded ring of [`FlightRecord`]s for
//!   the *interesting* requests (slower than the `--slow-ms` threshold,
//!   or failed), each keeping the full request JSON and the engine's
//!   bound-attribution summary. Shallow in coverage but deep per entry:
//!   enough to replay and explain a slow request after the fact.
//!
//! Outcome taxonomy (the `outcome` field of both record kinds):
//! `hit` (ready cache entry), `join` (piggybacked on an identical
//! in-flight run), `miss` (led a fresh engine run), `timeout` (caller's
//! budget elapsed), `reject` (queue full or draining), `error` (invalid
//! request or engine failure).

use crate::error::ServeError;
use aurora_core::SimReport;
use serde::Serialize;
use std::collections::VecDeque;
use std::fs::File;
use std::io::Write as IoWrite;
use std::sync::Mutex;

/// How a request was answered, as logged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Answered from a ready cache entry.
    Hit,
    /// Joined an identical in-flight run.
    Join,
    /// Led a fresh engine run.
    Miss,
    /// The caller's wait budget elapsed (the run itself continues).
    Timeout,
    /// Turned away without work: queue full or draining.
    Reject,
    /// Invalid request or engine failure.
    Error,
}

impl Outcome {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Hit => "hit",
            Outcome::Join => "join",
            Outcome::Miss => "miss",
            Outcome::Timeout => "timeout",
            Outcome::Reject => "reject",
            Outcome::Error => "error",
        }
    }

    /// The outcome of a failed request.
    pub fn of_error(err: &ServeError) -> Self {
        match err {
            ServeError::Timeout { .. } => Outcome::Timeout,
            ServeError::Overloaded { .. } | ServeError::ShuttingDown => Outcome::Reject,
            ServeError::BadRequest(_)
            | ServeError::Sim(_)
            | ServeError::Io(_)
            | ServeError::Unavailable(_) => Outcome::Error,
        }
    }

    /// True for the outcomes the flight recorder always captures.
    pub fn is_failure(&self) -> bool {
        matches!(self, Outcome::Timeout | Outcome::Reject | Outcome::Error)
    }
}

/// Queue-wait vs execution split of one led job, measured by the worker
/// that ran it and delivered to the leader through the flight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct JobTiming {
    /// Time the job sat on the admission queue, µs.
    pub queue_wait_us: u64,
    /// Engine execution time, µs.
    pub execute_us: u64,
}

/// One access-log line: everything the daemon knows about one answered
/// request. `queue_wait_us`/`execute_us` are zero for requests that ran
/// no engine work of their own (hits, joins, rejects).
#[derive(Debug, Clone, Serialize)]
pub struct AccessRecord {
    /// Monotonic per-service request number (1-based).
    pub seq: u64,
    /// Request digest; empty when the line never parsed.
    pub digest: String,
    /// Workload label of the request ("" when unparseable).
    pub workload: String,
    /// `hit` / `join` / `miss` / `timeout` / `reject` / `error`.
    pub outcome: String,
    pub queue_wait_us: u64,
    pub execute_us: u64,
    /// Inclusive end-to-end latency (the `serve.latency_us` sample).
    pub latency_us: u64,
    /// Serialized response size, newline included (0 until the
    /// transport fills it in; in-process callers have no wire form).
    pub bytes_out: u64,
    /// The error message for non-success outcomes.
    pub error: Option<String>,
}

/// Destination for access-log lines. Implementations must be safe to
/// share across connection threads.
pub trait EventLog: Send + Sync {
    /// Writes one pre-serialized NDJSON line (no trailing newline).
    fn emit(&self, line: &str);

    /// False when lines are dropped unread — lets callers skip the
    /// serialization work entirely.
    fn enabled(&self) -> bool {
        true
    }
}

/// The default sink: drops everything, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullLog;

impl EventLog for NullLog {
    fn emit(&self, _line: &str) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Writes each line to stderr. `eprintln!` locks stderr per call, so
/// concurrent connection threads never interleave partial lines.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrLog;

impl EventLog for StderrLog {
    fn emit(&self, line: &str) {
        eprintln!("{line}");
    }
}

/// Appends lines to a file. Each `emit` writes one complete line and
/// flushes it — crash-safe in the sense that a killed daemon loses at
/// most the line being written, never leaves a torn earlier line.
#[derive(Debug)]
pub struct FileLog {
    file: Mutex<File>,
}

impl FileLog {
    /// Opens (or creates) `path` for appending.
    pub fn open(path: &std::path::Path) -> std::io::Result<Self> {
        let file = File::options().create(true).append(true).open(path)?;
        Ok(Self {
            file: Mutex::new(file),
        })
    }
}

impl EventLog for FileLog {
    fn emit(&self, line: &str) {
        let mut file = self.file.lock().expect("access log poisoned");
        // one write_all per line: the newline travels with its line
        let _ = file.write_all(format!("{line}\n").as_bytes());
        let _ = file.flush();
    }
}

/// Collects lines in memory — the test sink.
#[derive(Debug, Default)]
pub struct MemoryLog {
    lines: Mutex<Vec<String>>,
}

impl MemoryLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Every line emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory log poisoned").clone()
    }
}

impl EventLog for MemoryLog {
    fn emit(&self, line: &str) {
        self.lines
            .lock()
            .expect("memory log poisoned")
            .push(line.to_string());
    }
}

/// The engine's bound attribution of one recorded flight, condensed to
/// the shares a human (or the cluster router) acts on.
#[derive(Debug, Clone, Serialize)]
pub struct FlightProfile {
    pub total_cycles: u64,
    /// `compute` / `noc` / `dram` / `imbalance` — the largest share.
    pub dominant: String,
    pub compute_frac: f64,
    pub noc_frac: f64,
    pub dram_frac: f64,
    pub imbalance_frac: f64,
    pub overhead_frac: f64,
}

impl FlightProfile {
    /// Summarizes a report's profile; `None` when profiling was off.
    pub fn of(report: &SimReport) -> Option<Self> {
        let p = &report.profile;
        if p.is_empty() {
            return None;
        }
        let frac = |b| p.mix.fraction(b);
        use aurora_core::profile::Bound;
        Some(Self {
            total_cycles: report.total_cycles,
            dominant: p.dominant().label().to_string(),
            compute_frac: frac(Bound::Compute),
            noc_frac: frac(Bound::Noc),
            dram_frac: frac(Bound::Dram),
            imbalance_frac: frac(Bound::Imbalance),
            overhead_frac: p.overhead_fraction(),
        })
    }
}

/// One flight-recorder entry: an access record's fields plus the full
/// request JSON and the engine's attribution summary.
#[derive(Debug, Clone, Serialize)]
pub struct FlightRecord {
    pub seq: u64,
    pub digest: String,
    pub workload: String,
    pub outcome: String,
    pub queue_wait_us: u64,
    pub execute_us: u64,
    pub latency_us: u64,
    pub error: Option<String>,
    /// The request as received — enough to replay it verbatim.
    pub request: serde_json::Value,
    /// Bound attribution of the run; `None` for requests that never
    /// reached the engine (rejects, bad requests).
    pub profile: Option<FlightProfile>,
    /// Host-side per-stage wall/allocation split of the run. `None`
    /// unless the daemon ran with span profiling on
    /// (`AURORA_HOST_PROFILE=1`) *and* this request led the engine run
    /// — hits and joins ran nothing of their own.
    pub host_profile: Option<aurora_core::HostProfile>,
}

/// Bounded ring of the last `capacity` slow/error flights. Capacity 0
/// disables recording entirely.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<FlightRecord>>,
    capacity: usize,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
            capacity,
        }
    }

    /// Maximum retained records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a record, evicting the oldest past capacity.
    pub fn record(&self, record: FlightRecord) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        while ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Retained records, oldest first.
    pub fn dump(&self) -> Vec<FlightRecord> {
        self.ring
            .lock()
            .expect("flight ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring poisoned").len()
    }

    /// True when nothing has been recorded (or capacity is 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64) -> FlightRecord {
        FlightRecord {
            seq,
            digest: format!("d{seq}"),
            workload: "w".into(),
            outcome: "miss".into(),
            queue_wait_us: 1,
            execute_us: 2,
            latency_us: 3,
            error: None,
            request: serde_json::Value::Null,
            profile: None,
            host_profile: None,
        }
    }

    #[test]
    fn outcome_labels_and_error_mapping() {
        assert_eq!(Outcome::Hit.label(), "hit");
        assert_eq!(
            Outcome::of_error(&ServeError::Timeout { ms: 5 }),
            Outcome::Timeout
        );
        assert_eq!(
            Outcome::of_error(&ServeError::Overloaded {
                queued: 1,
                capacity: 1
            }),
            Outcome::Reject
        );
        assert_eq!(
            Outcome::of_error(&ServeError::ShuttingDown),
            Outcome::Reject
        );
        assert_eq!(
            Outcome::of_error(&ServeError::BadRequest("x".into())),
            Outcome::Error
        );
        assert!(Outcome::Timeout.is_failure());
        assert!(!Outcome::Miss.is_failure());
    }

    #[test]
    fn ring_is_bounded_and_fifo() {
        let rec = FlightRecorder::new(2);
        for seq in 1..=3 {
            rec.record(record(seq));
        }
        let dump = rec.dump();
        assert_eq!(rec.len(), 2);
        assert_eq!(dump[0].seq, 2, "oldest evicted first");
        assert_eq!(dump[1].seq, 3);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let rec = FlightRecorder::new(0);
        rec.record(record(1));
        assert!(rec.is_empty());
    }

    #[test]
    fn memory_log_collects_lines() {
        let log = MemoryLog::new();
        assert!(log.enabled());
        log.emit("a");
        log.emit("b");
        assert_eq!(log.lines(), vec!["a", "b"]);
        assert!(!NullLog.enabled());
    }

    #[test]
    fn file_log_appends_whole_lines() {
        let path = std::env::temp_dir().join(format!("aurora-access-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let log = FileLog::open(&path).expect("open");
            log.emit("{\"seq\":1}");
            log.emit("{\"seq\":2}");
        }
        let body = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(body, "{\"seq\":1}\n{\"seq\":2}\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn access_record_serializes_to_one_json_object() {
        let r = AccessRecord {
            seq: 7,
            digest: "abc".into(),
            workload: "w".into(),
            outcome: "hit".into(),
            queue_wait_us: 0,
            execute_us: 0,
            latency_us: 12,
            bytes_out: 120,
            error: None,
        };
        let line = serde_json::to_string(&r).unwrap();
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("seq").and_then(|x| x.as_u64()), Some(7));
        assert_eq!(v.get("outcome").and_then(|x| x.as_str()), Some("hit"));
        assert!(line.starts_with('{') && !line.contains('\n'));
    }
}
