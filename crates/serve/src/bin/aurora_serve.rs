//! The Aurora simulation daemon.
//!
//! ```text
//! aurora_serve --socket /tmp/aurora.sock [--workers N] [--queue N]
//!              [--cache N] [--timeout-ms N] [--metrics PATH]
//! aurora_serve --tcp 127.0.0.1:7700
//! ```
//!
//! Clients send one `{"id": N, "sim": {...SimRequest...}}` JSON document
//! per line and read one `SimResponse` line back. SIGTERM/SIGINT drain
//! gracefully: in-flight and queued simulations finish, their responses
//! flush, the socket file is removed, and the process exits 0.

use aurora_core::Telemetry;
use aurora_serve::{serve, Endpoint, ServeConfig, SimService};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // async-signal-safe: a single atomic store; the accept loop polls it
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Registers `on_signal` for SIGTERM and SIGINT via the libc `signal`
/// symbol (already linked through std; no external crate needed).
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: aurora_serve (--socket PATH | --tcp ADDR) [--workers N] \
         [--queue N] [--cache N] [--timeout-ms N] [--metrics PATH]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut endpoint: Option<Endpoint> = None;
    let mut config = ServeConfig::default();
    let mut metrics_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--socket" => endpoint = Some(Endpoint::Unix(PathBuf::from(value("--socket")))),
            "--tcp" => endpoint = Some(Endpoint::Tcp(value("--tcp"))),
            "--workers" => config.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => config.queue_depth = value("--queue").parse().unwrap_or_else(|_| usage()),
            "--cache" => {
                config.cache_capacity = value("--cache").parse().unwrap_or_else(|_| usage())
            }
            "--timeout-ms" => {
                config.timeout_ms = value("--timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--metrics" => metrics_path = Some(PathBuf::from(value("--metrics"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let Some(endpoint) = endpoint else { usage() };
    if config.workers == 0 {
        // the daemon needs a pool: inline execution would serialize all
        // connections through the accept loop's children
        config.workers = 1;
    }

    install_signal_handlers();
    let telemetry = Telemetry::enabled();
    let service = Arc::new(SimService::new(config, telemetry.clone()));
    eprintln!(
        "aurora_serve: listening on {endpoint} \
         (workers {}, queue {}, cache {}, timeout {} ms)",
        config.workers, config.queue_depth, config.cache_capacity, config.timeout_ms
    );

    let shutdown = Arc::new(AtomicBool::new(false));
    // bridge the signal-handler static into the poll flag
    {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || loop {
            if SHUTDOWN.load(Ordering::SeqCst) {
                shutdown.store(true, Ordering::SeqCst);
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }

    let result = serve(Arc::clone(&service), &endpoint, shutdown);

    // final metrics snapshot (cache hit/miss, latency histograms) for
    // post-mortems and the smoke gate
    if let Some(path) = metrics_path {
        let snapshot = telemetry.snapshot();
        match serde_json::to_string_pretty(&snapshot) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("aurora_serve: writing metrics to {path:?} failed: {e}");
                }
            }
            Err(e) => eprintln!("aurora_serve: metrics serialization failed: {e}"),
        }
    }

    match result {
        Ok(()) => {
            eprintln!("aurora_serve: drained, bye");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("aurora_serve: {e}");
            ExitCode::FAILURE
        }
    }
}
