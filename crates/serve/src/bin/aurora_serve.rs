//! The Aurora simulation daemon.
//!
//! ```text
//! aurora_serve --socket /tmp/aurora.sock [--workers N] [--queue N]
//!              [--cache N] [--timeout-ms N] [--metrics PATH]
//!              [--metrics-every SECS] [--access-log PATH|stderr]
//!              [--slow-ms N] [--flights N] [--drain-grace-ms N]
//! aurora_serve --tcp 127.0.0.1:7700
//! ```
//!
//! Clients send one `{"id": N, "sim": {...SimRequest...}}` JSON document
//! per line and read one `SimResponse` line back; lines with an
//! `"admin"` key (`health`, `stats`, `metrics`, `flights`) introspect
//! the live daemon instead. SIGTERM/SIGINT drain gracefully: in-flight
//! and queued simulations finish, their responses flush, open
//! connections keep answering (health reports `draining`) for
//! `--drain-grace-ms`, the flight recorder dumps to stderr, the socket
//! file is removed, and the process exits 0.
//!
//! Observability flags:
//!
//! * `--access-log PATH|stderr` — one NDJSON line per served request
//!   (seq, digest, outcome, queue-wait/execute/latency µs, bytes out).
//! * `--metrics-every SECS` — periodic `serve.*` activity deltas on
//!   stderr (name-ordered; idle intervals print nothing).
//! * `--slow-ms N` / `--flights N` — flight-recorder threshold and ring
//!   capacity.
//! * `--metrics PATH` — full `MetricsSnapshot` JSON written at exit.

use aurora_core::Telemetry;
use aurora_serve::{
    serve_with, Endpoint, FileLog, ServeConfig, ServerOptions, SimService, StderrLog,
};
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // async-signal-safe: a single atomic store; the accept loop polls it
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Registers `on_signal` for SIGTERM and SIGINT via the libc `signal`
/// symbol (already linked through std; no external crate needed).
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: aurora_serve (--socket PATH | --tcp ADDR) [--workers N] \
         [--queue N] [--cache N] [--timeout-ms N] [--metrics PATH] \
         [--metrics-every SECS] [--access-log PATH|stderr] [--slow-ms N] \
         [--flights N] [--drain-grace-ms N]"
    );
    std::process::exit(2);
}

/// One `--metrics-every` stderr line: name-ordered activity since the
/// previous interval.
#[derive(Serialize)]
struct MetricsDelta {
    event: String,
    interval_s: u64,
    delta: BTreeMap<String, u64>,
}

fn main() -> ExitCode {
    let mut endpoint: Option<Endpoint> = None;
    let mut config = ServeConfig::default();
    let mut metrics_path: Option<PathBuf> = None;
    let mut metrics_every_s: u64 = 0;
    let mut access_log: Option<String> = None;
    let mut drain_grace_ms: u64 = 0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--socket" => endpoint = Some(Endpoint::Unix(PathBuf::from(value("--socket")))),
            "--tcp" => endpoint = Some(Endpoint::Tcp(value("--tcp"))),
            "--workers" => config.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => config.queue_depth = value("--queue").parse().unwrap_or_else(|_| usage()),
            "--cache" => {
                config.cache_capacity = value("--cache").parse().unwrap_or_else(|_| usage())
            }
            "--timeout-ms" => {
                config.timeout_ms = value("--timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--slow-ms" => config.slow_ms = value("--slow-ms").parse().unwrap_or_else(|_| usage()),
            "--flights" => {
                config.flight_capacity = value("--flights").parse().unwrap_or_else(|_| usage())
            }
            "--metrics" => metrics_path = Some(PathBuf::from(value("--metrics"))),
            "--metrics-every" => {
                metrics_every_s = value("--metrics-every").parse().unwrap_or_else(|_| usage())
            }
            "--access-log" => access_log = Some(value("--access-log")),
            "--drain-grace-ms" => {
                drain_grace_ms = value("--drain-grace-ms")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let Some(endpoint) = endpoint else { usage() };
    if config.workers == 0 {
        // the daemon needs a pool: inline execution would serialize all
        // connections through the accept loop's children
        config.workers = 1;
    }

    let sink: Arc<dyn aurora_serve::EventLog> = match access_log.as_deref() {
        None => Arc::new(aurora_serve::NullLog),
        Some("stderr") => Arc::new(StderrLog),
        Some(path) => match FileLog::open(std::path::Path::new(path)) {
            Ok(log) => Arc::new(log),
            Err(e) => {
                eprintln!("aurora_serve: cannot open access log {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    install_signal_handlers();
    let telemetry = Telemetry::enabled();
    let service = Arc::new(SimService::with_access_log(config, telemetry.clone(), sink));
    eprintln!(
        "aurora_serve: listening on {endpoint} \
         (workers {}, queue {}, cache {}, timeout {} ms, slow {} ms, flights {})",
        config.workers,
        config.queue_depth,
        config.cache_capacity,
        config.timeout_ms,
        config.slow_ms,
        config.flight_capacity
    );

    let shutdown = Arc::new(AtomicBool::new(false));
    // bridge the signal-handler static into the poll flag
    {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || loop {
            if SHUTDOWN.load(Ordering::SeqCst) {
                shutdown.store(true, Ordering::SeqCst);
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }

    // periodic metric deltas on stderr: one NDJSON line per interval
    // with activity, nothing when idle
    if metrics_every_s > 0 {
        let telemetry = telemetry.clone();
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let mut previous = telemetry.snapshot();
            'interval: loop {
                // sleep in short steps so drain does not wait on us
                for _ in 0..metrics_every_s * 10 {
                    if shutdown.load(Ordering::SeqCst) {
                        break 'interval;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
                let snapshot = telemetry.snapshot();
                let delta = snapshot.delta_since(&previous);
                if !delta.is_empty() {
                    let line = MetricsDelta {
                        event: "metrics".to_string(),
                        interval_s: metrics_every_s,
                        delta,
                    };
                    eprintln!(
                        "{}",
                        serde_json::to_string(&line).expect("delta serializes")
                    );
                }
                previous = snapshot;
            }
        });
    }

    let result = serve_with(
        Arc::clone(&service),
        &endpoint,
        shutdown,
        ServerOptions {
            drain_grace: Duration::from_millis(drain_grace_ms),
        },
    );

    // the flight recorder's post-mortem: every retained slow/error
    // request, one NDJSON line each, before the process goes away
    let flights = service.flights();
    if !flights.is_empty() {
        eprintln!(
            "aurora_serve: flight recorder retained {} slow/error request(s):",
            flights.len()
        );
        for flight in &flights {
            eprintln!(
                "{}",
                serde_json::to_string(flight).expect("flight record serializes")
            );
        }
    }

    // final metrics snapshot (cache hit/miss, latency histograms) for
    // post-mortems and the smoke gate
    if let Some(path) = metrics_path {
        let snapshot = telemetry.snapshot();
        match serde_json::to_string_pretty(&snapshot) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("aurora_serve: writing metrics to {path:?} failed: {e}");
                }
            }
            Err(e) => eprintln!("aurora_serve: metrics serialization failed: {e}"),
        }
    }

    match result {
        Ok(()) => {
            eprintln!("aurora_serve: drained, bye");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("aurora_serve: {e}");
            ExitCode::FAILURE
        }
    }
}
