//! The Aurora simulation daemon.
//!
//! ```text
//! aurora_serve --socket /tmp/aurora.sock [--workers N] [--queue N]
//!              [--cache N] [--timeout-ms N] [--metrics PATH]
//!              [--metrics-every SECS] [--access-log PATH|stderr]
//!              [--slow-ms N] [--flights N] [--drain-grace-ms N]
//! aurora_serve --tcp 127.0.0.1:7700
//! aurora_serve --router --socket /tmp/aurora.sock --workers 4
//! aurora_serve --router --socket /tmp/front.sock \
//!              --backend unix:/tmp/w0.sock --backend tcp:10.0.0.2:7700
//! ```
//!
//! With `--router` the process becomes the cluster front-end instead of
//! a simulation worker: it shards sim lines across worker daemons by
//! content digest (rendezvous hashing, so identical requests always hit
//! the same warm cache), probes their health, respawns supervised
//! workers under bounded backoff, and retries a failed forward on the
//! next shard — a killed worker costs clients nothing. `--workers N`
//! spawns N child `aurora_serve` processes on scratch Unix sockets;
//! `--backend` (repeatable) joins externally managed workers instead.
//! The router answers `{"admin":"health"}` (per-shard states, pids,
//! respawn counts) and `{"admin":"stats"}` (cluster-wide aggregate plus
//! each shard's raw body) on its own socket.
//!
//! Clients send one `{"id": N, "sim": {...SimRequest...}}` JSON document
//! per line and read one `SimResponse` line back; lines with an
//! `"admin"` key (`health`, `stats`, `metrics`, `flights`) introspect
//! the live daemon instead. SIGTERM/SIGINT drain gracefully: in-flight
//! and queued simulations finish, their responses flush, open
//! connections keep answering (health reports `draining`) for
//! `--drain-grace-ms`, the flight recorder dumps to stderr, the socket
//! file is removed, and the process exits 0.
//!
//! Observability flags:
//!
//! * `--access-log PATH|stderr` — one NDJSON line per served request
//!   (seq, digest, outcome, queue-wait/execute/latency µs, bytes out).
//! * `--metrics-every SECS` — periodic `serve.*` activity deltas on
//!   stderr (name-ordered; idle intervals print nothing).
//! * `--slow-ms N` / `--flights N` — flight-recorder threshold and ring
//!   capacity.
//! * `--metrics PATH` — full `MetricsSnapshot` JSON written at exit.

use aurora_core::Telemetry;
use aurora_serve::{
    serve_with, Backend, Endpoint, FileLog, ProcessLauncher, Router, RouterConfig, ServeConfig,
    ServerOptions, SimService, StderrLog,
};
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // async-signal-safe: a single atomic store; the accept loop polls it
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Registers `on_signal` for SIGTERM and SIGINT via the libc `signal`
/// symbol (already linked through std; no external crate needed).
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: aurora_serve (--socket PATH | --tcp ADDR) [--workers N] \
         [--queue N] [--cache N] [--timeout-ms N] [--metrics PATH] \
         [--metrics-every SECS] [--access-log PATH|stderr] [--slow-ms N] \
         [--flights N] [--drain-grace-ms N]\n       \
         aurora_serve --router (--socket PATH | --tcp ADDR) \
         (--workers N [--worker-threads N] | --backend ENDPOINT ...) \
         [--probe-ms N] [--connect-timeout-ms N] [--read-timeout-ms N] \
         [--queue N] [--cache N] [--timeout-ms N] \
         [--access-log PATH|stderr] [--drain-grace-ms N]"
    );
    std::process::exit(2);
}

/// One `--metrics-every` stderr line: name-ordered activity since the
/// previous interval.
#[derive(Serialize)]
struct MetricsDelta {
    event: String,
    interval_s: u64,
    delta: BTreeMap<String, u64>,
}

fn main() -> ExitCode {
    let mut endpoint: Option<Endpoint> = None;
    let mut config = ServeConfig::default();
    let mut metrics_path: Option<PathBuf> = None;
    let mut metrics_every_s: u64 = 0;
    let mut access_log: Option<String> = None;
    let mut drain_grace_ms: u64 = 0;
    let mut router_mode = false;
    let mut external_backends: Vec<String> = Vec::new();
    let mut worker_threads: usize = 0;
    let mut probe_ms: u64 = 200;
    let mut connect_timeout_ms: u64 = 1_000;
    let mut read_timeout_ms: u64 = 60_000;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--socket" => endpoint = Some(Endpoint::Unix(PathBuf::from(value("--socket")))),
            "--tcp" => endpoint = Some(Endpoint::Tcp(value("--tcp"))),
            "--workers" => config.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => config.queue_depth = value("--queue").parse().unwrap_or_else(|_| usage()),
            "--cache" => {
                config.cache_capacity = value("--cache").parse().unwrap_or_else(|_| usage())
            }
            "--timeout-ms" => {
                config.timeout_ms = value("--timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--slow-ms" => config.slow_ms = value("--slow-ms").parse().unwrap_or_else(|_| usage()),
            "--flights" => {
                config.flight_capacity = value("--flights").parse().unwrap_or_else(|_| usage())
            }
            "--metrics" => metrics_path = Some(PathBuf::from(value("--metrics"))),
            "--metrics-every" => {
                metrics_every_s = value("--metrics-every").parse().unwrap_or_else(|_| usage())
            }
            "--access-log" => access_log = Some(value("--access-log")),
            "--router" => router_mode = true,
            "--backend" => external_backends.push(value("--backend")),
            "--worker-threads" => {
                worker_threads = value("--worker-threads")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--probe-ms" => probe_ms = value("--probe-ms").parse().unwrap_or_else(|_| usage()),
            "--connect-timeout-ms" => {
                connect_timeout_ms = value("--connect-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--read-timeout-ms" => {
                read_timeout_ms = value("--read-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--drain-grace-ms" => {
                drain_grace_ms = value("--drain-grace-ms")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let Some(endpoint) = endpoint else { usage() };
    if !router_mode && config.workers == 0 {
        // the daemon needs a pool: inline execution would serialize all
        // connections through the accept loop's children
        config.workers = 1;
    }

    let sink: Arc<dyn aurora_serve::EventLog> = match access_log.as_deref() {
        None => Arc::new(aurora_serve::NullLog),
        Some("stderr") => Arc::new(StderrLog),
        Some(path) => match FileLog::open(std::path::Path::new(path)) {
            Ok(log) => Arc::new(log),
            Err(e) => {
                eprintln!("aurora_serve: cannot open access log {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    install_signal_handlers();
    let shutdown = Arc::new(AtomicBool::new(false));
    // bridge the signal-handler static into the poll flag
    {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || loop {
            if SHUTDOWN.load(Ordering::SeqCst) {
                shutdown.store(true, Ordering::SeqCst);
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }

    if router_mode {
        return run_router(RouterRun {
            endpoint,
            shutdown,
            sink,
            drain_grace_ms,
            // in router mode --workers counts worker *processes*
            worker_count: config.workers,
            worker_threads,
            worker_config: config,
            external_backends,
            probe_ms,
            connect_timeout_ms,
            read_timeout_ms,
        });
    }

    let telemetry = Telemetry::enabled();
    let service = Arc::new(SimService::with_access_log(config, telemetry.clone(), sink));
    eprintln!(
        "aurora_serve: listening on {endpoint} \
         (workers {}, queue {}, cache {}, timeout {} ms, slow {} ms, flights {})",
        config.workers,
        config.queue_depth,
        config.cache_capacity,
        config.timeout_ms,
        config.slow_ms,
        config.flight_capacity
    );

    // periodic metric deltas on stderr: one NDJSON line per interval
    // with activity, nothing when idle
    if metrics_every_s > 0 {
        let telemetry = telemetry.clone();
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let mut previous = telemetry.snapshot();
            'interval: loop {
                // sleep in short steps so drain does not wait on us
                for _ in 0..metrics_every_s * 10 {
                    if shutdown.load(Ordering::SeqCst) {
                        break 'interval;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
                let snapshot = telemetry.snapshot();
                let delta = snapshot.delta_since(&previous);
                if !delta.is_empty() {
                    let line = MetricsDelta {
                        event: "metrics".to_string(),
                        interval_s: metrics_every_s,
                        delta,
                    };
                    eprintln!(
                        "{}",
                        serde_json::to_string(&line).expect("delta serializes")
                    );
                }
                previous = snapshot;
            }
        });
    }

    let result = serve_with(
        Arc::clone(&service),
        &endpoint,
        shutdown,
        ServerOptions {
            drain_grace: Duration::from_millis(drain_grace_ms),
        },
    );

    // the flight recorder's post-mortem: every retained slow/error
    // request, one NDJSON line each, before the process goes away
    let flights = service.flights();
    if !flights.is_empty() {
        eprintln!(
            "aurora_serve: flight recorder retained {} slow/error request(s):",
            flights.len()
        );
        for flight in &flights {
            eprintln!(
                "{}",
                serde_json::to_string(flight).expect("flight record serializes")
            );
        }
    }

    // final metrics snapshot (cache hit/miss, latency histograms) for
    // post-mortems and the smoke gate
    if let Some(path) = metrics_path {
        let snapshot = telemetry.snapshot();
        match serde_json::to_string_pretty(&snapshot) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("aurora_serve: writing metrics to {path:?} failed: {e}");
                }
            }
            Err(e) => eprintln!("aurora_serve: metrics serialization failed: {e}"),
        }
    }

    match result {
        Ok(()) => {
            eprintln!("aurora_serve: drained, bye");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("aurora_serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Everything `--router` mode needs, bundled off the flag parser.
struct RouterRun {
    endpoint: Endpoint,
    shutdown: Arc<AtomicBool>,
    sink: Arc<dyn aurora_serve::EventLog>,
    drain_grace_ms: u64,
    worker_count: usize,
    worker_threads: usize,
    worker_config: ServeConfig,
    external_backends: Vec<String>,
    probe_ms: u64,
    connect_timeout_ms: u64,
    read_timeout_ms: u64,
}

/// The `--router` main: build the shard set (spawned children or
/// external endpoints), start probing, and serve the same NDJSON
/// protocol on the front socket until shutdown, then drain the whole
/// cluster.
fn run_router(run: RouterRun) -> ExitCode {
    let mut backends: Vec<Arc<Backend>> = Vec::new();

    if run.external_backends.is_empty() {
        if run.worker_count == 0 {
            eprintln!("aurora_serve: --router needs --workers N or --backend ENDPOINT");
            usage();
        }
        let exe = match std::env::current_exe() {
            Ok(path) => path,
            Err(e) => {
                eprintln!("aurora_serve: cannot locate own binary for worker spawn: {e}");
                return ExitCode::FAILURE;
            }
        };
        let threads = if run.worker_threads == 0 {
            ServeConfig::default().workers
        } else {
            run.worker_threads
        };
        for i in 0..run.worker_count {
            // scratch socket per shard, unique to this router process
            let sock = std::env::temp_dir()
                .join(format!("aurora-cluster-{}-w{i}.sock", std::process::id()));
            let _ = std::fs::remove_file(&sock);
            let args = vec![
                "--socket".to_string(),
                sock.display().to_string(),
                "--workers".to_string(),
                threads.to_string(),
                "--queue".to_string(),
                run.worker_config.queue_depth.to_string(),
                "--cache".to_string(),
                run.worker_config.cache_capacity.to_string(),
                "--timeout-ms".to_string(),
                run.worker_config.timeout_ms.to_string(),
            ];
            backends.push(Arc::new(Backend::supervised(
                // shard names are deliberately positional, not
                // socket-derived: affinity then survives router restarts
                // even though the scratch paths change
                format!("w{i}"),
                Endpoint::Unix(sock),
                Arc::new(ProcessLauncher {
                    exe: exe.clone(),
                    args,
                }),
            )));
        }
    } else {
        for spec in &run.external_backends {
            backends.push(Arc::new(Backend::external(
                spec.clone(),
                Endpoint::parse(spec),
            )));
        }
    }

    let shard_count = backends.len();
    let router = Arc::new(Router::with_access_log(
        backends,
        RouterConfig {
            probe_interval: Duration::from_millis(run.probe_ms),
            connect_timeout: Duration::from_millis(run.connect_timeout_ms),
            read_timeout: Duration::from_millis(run.read_timeout_ms),
            ..RouterConfig::default()
        },
        run.sink,
    ));
    if let Err(e) = router.start() {
        eprintln!("aurora_serve: router start failed: {e}");
        return ExitCode::FAILURE;
    }
    let healthy = router.wait_ready(Duration::from_secs(10));
    eprintln!(
        "aurora_serve: router on {} ({healthy}/{shard_count} shard(s) healthy, \
         probe {} ms, read deadline {} ms)",
        run.endpoint, run.probe_ms, run.read_timeout_ms
    );
    if healthy == 0 {
        eprintln!("aurora_serve: no shard became healthy; refusing to serve");
        router.drain();
        return ExitCode::FAILURE;
    }

    let result = serve_with(
        Arc::clone(&router),
        &run.endpoint,
        run.shutdown,
        ServerOptions {
            drain_grace: Duration::from_millis(run.drain_grace_ms),
        },
    );

    let totals = router.totals();
    eprintln!(
        "aurora_serve: router drained ({} routed, {} retries, {} failovers, {} unavailable)",
        totals.routed, totals.retries, totals.failovers, totals.unavailable
    );
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("aurora_serve: {e}");
            ExitCode::FAILURE
        }
    }
}
