//! The newline-delimited-JSON transport: listener, per-connection
//! protocol loop, and a small blocking client.
//!
//! Wire format (one JSON document per line, both directions):
//!
//! ```text
//! → {"id": 7, "sim": { ...SimRequest... }}
//! ← {"id": 7, "digest": "…16 hex…", "cached": false,
//!    "report": { ...SimReport... }, "error": null}
//! ```
//!
//! A line that fails to parse gets a `bad_request` response with the
//! request id when one could be recovered (id `0` otherwise); the
//! connection stays open. Requests on one connection are answered in
//! order. Concurrency comes from concurrent connections — each gets its
//! own thread, and the bounded admission queue inside [`SimService`]
//! does the real scheduling.
//!
//! Lines carrying an `"admin"` key are introspection commands (see
//! [`crate::admin`]) answered on the same connection. Every *sim* line
//! additionally produces one access-log record (with the serialized
//! response size as `bytes_out`) through the service's `EventLog`;
//! admin traffic is not logged.

use crate::admin;
use crate::error::ServeError;
use crate::observe::{AccessRecord, Outcome};
use crate::service::SimService;
use aurora_core::{SimRequest, SimResponse};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Transport tuning for [`serve_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerOptions {
    /// How long connection threads keep answering after the shutdown
    /// flag flips. `0` (the default, and [`serve`]'s behavior) closes
    /// connections at the next read timeout; a grace window lets
    /// clients observe the drain — `{"admin":"health"}` answers
    /// `draining`, sim lines get `shutting_down` — until they hang up
    /// or the window closes.
    pub drain_grace: Duration,
}

/// One request line: a client-chosen id plus the simulation request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    pub id: u64,
    pub sim: SimRequest,
}

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq)]
pub enum Endpoint {
    /// A Unix-domain socket at the given path (removed on bind and on
    /// shutdown).
    Unix(PathBuf),
    /// A TCP listen address, e.g. `127.0.0.1:7700`.
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// Serves `service` on `endpoint` until `shutdown` becomes true (the
/// signal handler's flag), then drains and returns. Blocks the calling
/// thread for the daemon's lifetime.
pub fn serve(
    service: Arc<SimService>,
    endpoint: &Endpoint,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    serve_with(service, endpoint, shutdown, ServerOptions::default())
}

/// [`serve`] with explicit [`ServerOptions`].
pub fn serve_with(
    service: Arc<SimService>,
    endpoint: &Endpoint,
    shutdown: Arc<AtomicBool>,
    options: ServerOptions,
) -> std::io::Result<()> {
    let listener = match endpoint {
        Endpoint::Unix(path) => {
            // a stale socket file from a crashed daemon would fail the
            // bind; nothing can be listening on it if we can remove it
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Listener::Unix(l)
        }
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            Listener::Tcp(l)
        }
    };

    // Nonblocking accept + poll: the listener wakes every few tens of
    // milliseconds to observe the shutdown flag — no signal-safe
    // self-pipe machinery needed. Accepted streams get a short read
    // timeout so idle connection threads can observe the flag too (an
    // idle client must not hold up a drain).
    const POLL: Duration = Duration::from_millis(25);
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        let accepted: Option<Box<dyn Conn>> = match &listener {
            Listener::Unix(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_read_timeout(Some(POLL))?;
                    Some(Box::new(stream))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_read_timeout(Some(POLL))?;
                    Some(Box::new(stream))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
        };
        match accepted {
            Some(conn) => {
                let service = Arc::clone(&service);
                let shutdown = Arc::clone(&shutdown);
                connections.push(std::thread::spawn(move || {
                    let _ = handle_connection(conn, &service, &shutdown, options.drain_grace);
                }));
            }
            None => std::thread::sleep(POLL),
        }
        connections.retain(|h| !h.is_finished());
    }

    // Drain: stop admission, finish queued work, then wait for the
    // connection threads to flush their final responses.
    service.drain();
    for h in connections {
        let _ = h.join();
    }
    if let Endpoint::Unix(path) = endpoint {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

/// A bidirectional stream that can split into an owned reader + writer.
trait Conn: Send {
    fn split(self: Box<Self>) -> std::io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)>;
}

impl Conn for UnixStream {
    fn split(self: Box<Self>) -> std::io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
        let reader = self.try_clone()?;
        Ok((Box::new(BufReader::new(reader)), Box::new(*self)))
    }
}

impl Conn for TcpStream {
    fn split(self: Box<Self>) -> std::io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
        let reader = self.try_clone()?;
        Ok((Box::new(BufReader::new(reader)), Box::new(*self)))
    }
}

fn handle_connection(
    conn: Box<dyn Conn>,
    service: &SimService,
    shutdown: &AtomicBool,
    drain_grace: Duration,
) -> std::io::Result<()> {
    let (mut reader, mut writer) = conn.split()?;
    let mut line = String::new();
    let mut shutdown_seen: Option<Instant> = None;
    loop {
        line.clear();
        // Assemble one line, polling the shutdown flag on every read
        // timeout. `read_line` keeps partially-read bytes in `line`, so
        // resuming after a timeout never loses data. Once shutdown is
        // observed the connection stays answerable for `drain_grace`
        // (clients poll health for the drain transition), then closes.
        let eof = loop {
            match reader.read_line(&mut line) {
                Ok(0) => break true,
                Ok(_) => break !line.ends_with('\n'),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if shutdown.load(Ordering::SeqCst) {
                        let seen = *shutdown_seen.get_or_insert_with(Instant::now);
                        if seen.elapsed() >= drain_grace {
                            return Ok(());
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        };
        if !line.trim().is_empty() {
            let mut out = answer(service, &line);
            out.push('\n');
            writer.write_all(out.as_bytes())?;
            writer.flush()?;
        }
        if eof {
            return Ok(());
        }
    }
}

/// Answers one protocol line — admin or sim — returning the response
/// line (no trailing newline). Sim lines are access-logged through the
/// service's sink with the response size filled in; admin lines are
/// not. This is the function the connection loop speaks.
pub fn answer(service: &SimService, line: &str) -> String {
    if let Ok(value) = serde_json::from_str::<serde_json::Value>(line) {
        if value.get("admin").is_some() {
            return admin::dispatch(service, &value);
        }
    }
    let (response, mut record) = respond_traced(service, line);
    let out = serde_json::to_string(&response).expect("response serializes");
    record.bytes_out = out.len() as u64 + 1; // the newline ships too
    service.log_access(&record);
    out
}

/// Answers one sim request line (the whole protocol, transport aside).
pub fn respond(service: &SimService, line: &str) -> SimResponse {
    respond_traced(service, line).0
}

/// [`respond`] plus the request's access record (`bytes_out` still 0).
fn respond_traced(service: &SimService, line: &str) -> (SimResponse, AccessRecord) {
    let parsed: Result<ServeRequest, _> = serde_json::from_str(line);
    match parsed {
        Err(e) => {
            // A malformed line still deserves an addressed reply when
            // the id field itself was readable.
            let id = recover_id(line);
            let err = ServeError::BadRequest(format!("unparseable request: {e:?}"));
            let record = AccessRecord {
                seq: service.next_seq(),
                digest: String::new(),
                workload: String::new(),
                outcome: Outcome::Error.label().to_string(),
                queue_wait_us: 0,
                execute_us: 0,
                latency_us: 0,
                bytes_out: 0,
                error: Some(err.to_string()),
            };
            (SimResponse::err(id, "", err.to_wire()), record)
        }
        Ok(req) => {
            let (result, record) = service.handle_traced(&req.sim);
            let response = match result {
                Ok(outcome) => SimResponse::ok(
                    req.id,
                    outcome.digest,
                    outcome.cached,
                    (*outcome.report).clone(),
                ),
                Err(e) => SimResponse::err(req.id, req.sim.digest(), e.to_wire()),
            };
            (response, record)
        }
    }
}

/// Best-effort extraction of the `id` from a line that failed to parse
/// as a full envelope.
fn recover_id(line: &str) -> u64 {
    #[derive(Deserialize)]
    struct IdOnly {
        id: u64,
    }
    serde_json::from_str::<serde_json::Value>(line)
        .ok()
        .and_then(|v| IdOnly::from_value(&v).ok().map(|i| i.id))
        .unwrap_or(0)
}

/// A small blocking client for the NDJSON protocol, used by
/// `serve_bench` and the smoke tests.
pub struct Client {
    reader: Box<dyn BufRead + Send>,
    writer: Box<dyn Write + Send>,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(endpoint: &Endpoint) -> Result<Self, ServeError> {
        let (reader, writer): (Box<dyn BufRead + Send>, Box<dyn Write + Send>) = match endpoint {
            Endpoint::Unix(path) => Box::new(UnixStream::connect(path)?).split()?,
            Endpoint::Tcp(addr) => Box::new(TcpStream::connect(addr.as_str())?).split()?,
        };
        Ok(Self {
            reader,
            writer,
            next_id: 1,
        })
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, sim: &SimRequest) -> Result<SimResponse, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = ServeRequest {
            id,
            sim: sim.clone(),
        };
        let mut line = serde_json::to_string(&envelope).expect("request serializes");
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServeError::Io("connection closed by daemon".into()));
        }
        serde_json::from_str(reply.trim_end())
            .map_err(|e| ServeError::Io(format!("unparseable response: {e:?}")))
    }

    /// Sends one admin command (`health`, `stats`, `metrics`,
    /// `flights`) and blocks for its reply as a raw JSON value.
    pub fn admin(&mut self, command: &str) -> Result<serde_json::Value, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = serde_json::Value::Map(vec![
            ("id".to_string(), serde_json::Value::UInt(id)),
            (
                "admin".to_string(),
                serde_json::Value::Str(command.to_string()),
            ),
        ]);
        let mut line = serde_json::to_string(&envelope).expect("admin request serializes");
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServeError::Io("connection closed by daemon".into()));
        }
        serde_json::from_str(reply.trim_end())
            .map_err(|e| ServeError::Io(format!("unparseable admin reply: {e:?}")))
    }
}
