//! The newline-delimited-JSON transport: listener, per-connection
//! protocol loop, and a small blocking client.
//!
//! Wire format (one JSON document per line, both directions):
//!
//! ```text
//! → {"id": 7, "sim": { ...SimRequest... }}
//! ← {"id": 7, "digest": "…16 hex…", "cached": false,
//!    "report": { ...SimReport... }, "error": null}
//! ```
//!
//! A line that fails to parse gets a `bad_request` response with the
//! request id when one could be recovered (id `0` otherwise); the
//! connection stays open. Requests on one connection are answered in
//! order. Concurrency comes from concurrent connections — each gets its
//! own thread, and the bounded admission queue inside [`SimService`]
//! does the real scheduling.
//!
//! The transport is generic over what answers a line: a [`LineHandler`]
//! is anything that turns one request line into one response line and
//! knows how to drain. [`SimService`] is the single-process handler; a
//! [`Router`](crate::router::Router) is the cluster front-end one. The
//! listener, shutdown, drain-grace, and socket-cleanup behavior is
//! shared — a router daemon and a worker daemon stop identically.
//!
//! Lines carrying an `"admin"` key are introspection commands (see
//! [`crate::admin`]) answered on the same connection. Every *sim* line
//! additionally produces one access-log record (with the serialized
//! response size as `bytes_out`) through the service's `EventLog`;
//! admin traffic is not logged.

use crate::admin;
use crate::error::ServeError;
use crate::observe::{AccessRecord, Outcome};
use crate::service::SimService;
use aurora_core::{SessionCommand, SimError, SimRequest, SimResponse, WIRE_VERSION};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Transport tuning for [`serve_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerOptions {
    /// How long connection threads keep answering after the shutdown
    /// flag flips. `0` (the default, and [`serve`]'s behavior) closes
    /// connections at the next read timeout; a grace window lets
    /// clients observe the drain — `{"admin":"health"}` answers
    /// `draining`, sim lines get `shutting_down` — until they hang up
    /// or the window closes.
    pub drain_grace: Duration,
}

/// One request line: a client-chosen id plus the simulation request.
/// `version` gates the envelope itself (a server rejects lines newer
/// than its [`WIRE_VERSION`] with a typed `unsupported_version` error);
/// absent on v0 lines, which deserialize as 0 and stay accepted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    pub id: u64,
    #[serde(default)]
    pub version: u32,
    pub sim: SimRequest,
}

/// One session line: a client-chosen id plus the session command
/// (`{"id":N,"session":{"op":"open","sim":{..}}}` and friends).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionLine {
    pub id: u64,
    #[serde(default)]
    pub version: u32,
    pub session: SessionCommand,
}

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq)]
pub enum Endpoint {
    /// A Unix-domain socket at the given path (removed on bind and on
    /// shutdown).
    Unix(PathBuf),
    /// A TCP listen address, e.g. `127.0.0.1:7700`.
    Tcp(String),
}

impl Endpoint {
    /// Parses `unix:PATH`, `tcp:ADDR`, or a bare filesystem path
    /// (treated as a Unix socket) — the `--backend` flag's grammar.
    pub fn parse(s: &str) -> Self {
        if let Some(path) = s.strip_prefix("unix:") {
            Endpoint::Unix(PathBuf::from(path))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            Endpoint::Tcp(addr.to_string())
        } else {
            Endpoint::Unix(PathBuf::from(s))
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// What the transport serves: one response line per request line, plus
/// a drain hook the listener calls exactly once on the way out.
///
/// Implemented by [`SimService`] (answer locally with the engine) and by
/// [`Router`](crate::router::Router) (forward to a worker shard).
pub trait LineHandler: Send + Sync + 'static {
    /// Answers one protocol line (input and output both carry no
    /// trailing newline).
    fn answer_line(&self, line: &str) -> String;

    /// Stops taking new work and finishes what is in flight. Called by
    /// [`serve_with`] after the accept loop stops — on *every* exit
    /// path, including accept errors. Must be idempotent.
    fn drain(&self);
}

impl LineHandler for SimService {
    fn answer_line(&self, line: &str) -> String {
        answer(self, line)
    }

    fn drain(&self) {
        SimService::drain(self)
    }
}

/// Serves `handler` on `endpoint` until `shutdown` becomes true (the
/// signal handler's flag), then drains and returns. Blocks the calling
/// thread for the daemon's lifetime.
pub fn serve<H: LineHandler>(
    handler: Arc<H>,
    endpoint: &Endpoint,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    serve_with(handler, endpoint, shutdown, ServerOptions::default())
}

/// [`serve`] with explicit [`ServerOptions`].
///
/// Every exit — a clean shutdown *or* a fatal accept error — goes
/// through the same teardown: the handler drains, connection threads
/// are joined (they observe the shutdown flag, which is forced on even
/// when the exit was an error), and a Unix socket file is unlinked. An
/// accept failure therefore never abandons in-flight requests or leaves
/// a stale socket path behind.
pub fn serve_with<H: LineHandler>(
    handler: Arc<H>,
    endpoint: &Endpoint,
    shutdown: Arc<AtomicBool>,
    options: ServerOptions,
) -> std::io::Result<()> {
    let listener = match endpoint {
        Endpoint::Unix(path) => {
            // a stale socket file from a crashed daemon would fail the
            // bind; nothing can be listening on it if we can remove it
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Listener::Unix(l)
        }
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            Listener::Tcp(l)
        }
    };

    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let loop_result = accept_loop(&listener, &handler, &shutdown, options, &mut connections);

    // Teardown, shared by the clean path and the error path. The flag
    // must be forced on first: after an accept *error* it is still
    // false, and the connection threads exit only by observing it (or
    // client EOF) — joining without setting it would hang forever.
    shutdown.store(true, Ordering::SeqCst);
    handler.drain();
    for h in connections {
        let _ = h.join();
    }
    if let Endpoint::Unix(path) = endpoint {
        let _ = std::fs::remove_file(path);
    }
    loop_result
}

/// Nonblocking accept + poll: the listener wakes every few tens of
/// milliseconds to observe the shutdown flag — no signal-safe
/// self-pipe machinery needed. Accepted streams get a short read
/// timeout so idle connection threads can observe the flag too (an
/// idle client must not hold up a drain).
fn accept_loop<H: LineHandler>(
    listener: &Listener,
    handler: &Arc<H>,
    shutdown: &Arc<AtomicBool>,
    options: ServerOptions,
    connections: &mut Vec<std::thread::JoinHandle<()>>,
) -> std::io::Result<()> {
    const POLL: Duration = Duration::from_millis(25);
    while !shutdown.load(Ordering::SeqCst) {
        let accepted: Option<Box<dyn Conn>> = match listener {
            Listener::Unix(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_read_timeout(Some(POLL))?;
                    Some(Box::new(stream))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_read_timeout(Some(POLL))?;
                    Some(Box::new(stream))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
        };
        match accepted {
            Some(conn) => {
                let handler = Arc::clone(handler);
                let shutdown = Arc::clone(shutdown);
                connections.push(std::thread::spawn(move || {
                    let _ = handle_connection(conn, &*handler, &shutdown, options.drain_grace);
                }));
            }
            None => std::thread::sleep(POLL),
        }
        connections.retain(|h| !h.is_finished());
    }
    Ok(())
}

/// A bidirectional stream that can split into an owned reader + writer.
trait Conn: Send {
    fn split(self: Box<Self>) -> std::io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)>;
}

impl Conn for UnixStream {
    fn split(self: Box<Self>) -> std::io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
        let reader = self.try_clone()?;
        Ok((Box::new(BufReader::new(reader)), Box::new(*self)))
    }
}

impl Conn for TcpStream {
    fn split(self: Box<Self>) -> std::io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
        let reader = self.try_clone()?;
        Ok((Box::new(BufReader::new(reader)), Box::new(*self)))
    }
}

fn handle_connection(
    conn: Box<dyn Conn>,
    handler: &dyn LineHandler,
    shutdown: &AtomicBool,
    drain_grace: Duration,
) -> std::io::Result<()> {
    let (mut reader, mut writer) = conn.split()?;
    let mut line = String::new();
    let mut shutdown_seen: Option<Instant> = None;
    loop {
        line.clear();
        // Assemble one line, polling the shutdown flag on every read
        // timeout. `read_line` keeps partially-read bytes in `line`, so
        // resuming after a timeout never loses data. Once shutdown is
        // observed the connection stays answerable for `drain_grace`
        // (clients poll health for the drain transition), then closes.
        let eof = loop {
            match reader.read_line(&mut line) {
                Ok(0) => break true,
                Ok(_) => break !line.ends_with('\n'),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if shutdown.load(Ordering::SeqCst) {
                        let seen = *shutdown_seen.get_or_insert_with(Instant::now);
                        if seen.elapsed() >= drain_grace {
                            return Ok(());
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        };
        if !line.trim().is_empty() {
            let mut out = handler.answer_line(line.trim_end_matches('\n'));
            out.push('\n');
            writer.write_all(out.as_bytes())?;
            writer.flush()?;
        }
        if eof {
            return Ok(());
        }
    }
}

/// Answers one protocol line — admin or sim — returning the response
/// line (no trailing newline). Sim lines are access-logged through the
/// service's sink with the response size filled in; admin lines are
/// not. This is the function the connection loop speaks.
pub fn answer(service: &SimService, line: &str) -> String {
    if let Ok(value) = serde_json::from_str::<serde_json::Value>(line) {
        if value.get("admin").is_some() {
            return admin::dispatch(service, &value);
        }
        if value.get("session").is_some() {
            return answer_session(service, line);
        }
    }
    let (response, mut record) = respond_traced(service, line);
    let out = serde_json::to_string(&response).expect("response serializes");
    record.bytes_out = out.len() as u64 + 1; // the newline ships too
    service.log_access(&record);
    out
}

/// Answers one sim request line (the whole protocol, transport aside).
pub fn respond(service: &SimService, line: &str) -> SimResponse {
    respond_traced(service, line).0
}

/// Answers one session line (`"session"` verb): parse, gate the
/// envelope version, dispatch to the service's session table, and
/// access-log the op like a sim line.
fn answer_session(service: &SimService, line: &str) -> String {
    let response = match serde_json::from_str::<SessionLine>(line) {
        Err(e) => {
            let err = ServeError::BadRequest(format!("unparseable session line: {e:?}"));
            let record = AccessRecord {
                seq: service.next_seq(),
                digest: String::new(),
                workload: "session".into(),
                outcome: Outcome::Error.label().to_string(),
                queue_wait_us: 0,
                execute_us: 0,
                latency_us: 0,
                bytes_out: 0,
                error: Some(err.to_string()),
            };
            let out = serde_json::to_string(&SimResponse::err(recover_id(line), "", err.to_wire()))
                .expect("response serializes");
            let mut record = record;
            record.bytes_out = out.len() as u64 + 1;
            service.log_access(&record);
            return out;
        }
        Ok(parsed) if parsed.version > WIRE_VERSION => {
            let err = ServeError::Sim(SimError::UnsupportedVersion {
                got: parsed.version,
                supported: WIRE_VERSION,
            });
            SimResponse::err(parsed.id, "", err.to_wire())
        }
        Ok(parsed) => {
            let (result, mut record) = service.handle_session_traced(&parsed.session);
            let response = match result {
                Ok(reply) => SimResponse::ok(parsed.id, reply.digest, reply.cached, reply.report),
                Err(e) => SimResponse::err(
                    parsed.id,
                    parsed.session.routing_digest().unwrap_or_default(),
                    e.to_wire(),
                ),
            };
            let out = serde_json::to_string(&response).expect("response serializes");
            record.bytes_out = out.len() as u64 + 1;
            service.log_access(&record);
            return out;
        }
    };
    serde_json::to_string(&response).expect("response serializes")
}

/// [`respond`] plus the request's access record (`bytes_out` still 0).
fn respond_traced(service: &SimService, line: &str) -> (SimResponse, AccessRecord) {
    let parsed: Result<ServeRequest, _> = serde_json::from_str(line);
    match parsed {
        Err(e) => {
            // A malformed line still deserves an addressed reply when
            // the id field itself was readable.
            let id = recover_id(line);
            let err = ServeError::BadRequest(format!("unparseable request: {e:?}"));
            let record = AccessRecord {
                seq: service.next_seq(),
                digest: String::new(),
                workload: String::new(),
                outcome: Outcome::Error.label().to_string(),
                queue_wait_us: 0,
                execute_us: 0,
                latency_us: 0,
                bytes_out: 0,
                error: Some(err.to_string()),
            };
            (SimResponse::err(id, "", err.to_wire()), record)
        }
        Ok(req) if req.version > WIRE_VERSION => {
            let err = ServeError::Sim(SimError::UnsupportedVersion {
                got: req.version,
                supported: WIRE_VERSION,
            });
            let record = AccessRecord {
                seq: service.next_seq(),
                digest: req.sim.digest(),
                workload: req.sim.workload_label(),
                outcome: Outcome::Error.label().to_string(),
                queue_wait_us: 0,
                execute_us: 0,
                latency_us: 0,
                bytes_out: 0,
                error: Some(err.to_string()),
            };
            (
                SimResponse::err(req.id, req.sim.digest(), err.to_wire()),
                record,
            )
        }
        Ok(req) => {
            let (result, record) = service.handle_traced(&req.sim);
            let response = match result {
                Ok(outcome) => SimResponse::ok(
                    req.id,
                    outcome.digest,
                    outcome.cached,
                    (*outcome.report).clone(),
                ),
                Err(e) => SimResponse::err(req.id, req.sim.digest(), e.to_wire()),
            };
            (response, record)
        }
    }
}

/// Best-effort extraction of the `id` from a line that failed to parse
/// as a full envelope.
pub(crate) fn recover_id(line: &str) -> u64 {
    #[derive(Deserialize)]
    struct IdOnly {
        id: u64,
    }
    serde_json::from_str::<serde_json::Value>(line)
        .ok()
        .and_then(|v| IdOnly::from_value(&v).ok().map(|i| i.id))
        .unwrap_or(0)
}

/// Connection and read-deadline budgets for a [`Client`].
///
/// The defaults (both `None`) preserve fully blocking behavior. The
/// router's health prober and forwarding path always set both — a
/// wedged worker daemon must cost a typed [`ServeError::Timeout`], not
/// a hung prober thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientOptions {
    /// Budget for establishing the connection.
    pub connect_timeout: Option<Duration>,
    /// Per-response read deadline. Measured per [`Client::roundtrip`]
    /// call, not per byte: a response that trickles in slower than the
    /// deadline still times out.
    pub read_timeout: Option<Duration>,
}

impl ClientOptions {
    /// Both budgets set to the same value.
    pub fn timeout(budget: Duration) -> Self {
        Self {
            connect_timeout: Some(budget),
            read_timeout: Some(budget),
        }
    }
}

/// How often a deadline-bounded client wakes to check its budget.
const CLIENT_POLL: Duration = Duration::from_millis(25);

/// A small blocking client for the NDJSON protocol, used by the
/// cluster router's forwarding path, `serve_bench`, and the smoke
/// tests.
pub struct Client {
    reader: Box<dyn BufRead + Send>,
    writer: Box<dyn Write + Send>,
    read_timeout: Option<Duration>,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon with no budgets (fully blocking).
    pub fn connect(endpoint: &Endpoint) -> Result<Self, ServeError> {
        Self::connect_with(endpoint, ClientOptions::default())
    }

    /// Connects to a daemon under explicit [`ClientOptions`].
    pub fn connect_with(endpoint: &Endpoint, options: ClientOptions) -> Result<Self, ServeError> {
        let (reader, writer): (Box<dyn BufRead + Send>, Box<dyn Write + Send>) = match endpoint {
            Endpoint::Unix(path) => {
                let stream = match options.connect_timeout {
                    None => UnixStream::connect(path)?,
                    Some(budget) => connect_unix_timeout(path.clone(), budget)?,
                };
                if options.read_timeout.is_some() {
                    stream.set_read_timeout(Some(CLIENT_POLL))?;
                }
                Box::new(stream).split()?
            }
            Endpoint::Tcp(addr) => {
                let stream = match options.connect_timeout {
                    None => TcpStream::connect(addr.as_str())?,
                    Some(budget) => connect_tcp_timeout(addr, budget)?,
                };
                if options.read_timeout.is_some() {
                    stream.set_read_timeout(Some(CLIENT_POLL))?;
                }
                Box::new(stream).split()?
            }
        };
        Ok(Self {
            reader,
            writer,
            read_timeout: options.read_timeout,
            next_id: 1,
        })
    }

    /// Sends one raw protocol line (no trailing newline) and blocks for
    /// exactly one response line, returned without its newline. The
    /// router's forwarding path uses this so responses pass through
    /// byte-identical; [`Client::request`]/[`Client::admin`] build on
    /// it.
    pub fn roundtrip(&mut self, line: &str) -> Result<String, ServeError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.recv_line()
    }

    /// Reads one line under the configured deadline.
    fn recv_line(&mut self) -> Result<String, ServeError> {
        let deadline = self.read_timeout.map(|t| (Instant::now() + t, t));
        let mut reply = String::new();
        loop {
            match self.reader.read_line(&mut reply) {
                Ok(0) if reply.is_empty() => {
                    return Err(ServeError::Io("connection closed by daemon".into()))
                }
                // EOF mid-line or a complete line: hand back what we got
                Ok(_) => return Ok(reply.trim_end_matches('\n').to_string()),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if let Some((at, budget)) = deadline {
                        if Instant::now() >= at {
                            return Err(ServeError::Timeout {
                                ms: budget.as_millis() as u64,
                            });
                        }
                    }
                    // no deadline configured: the stream itself is
                    // blocking, so this arm is unreachable then
                }
                Err(e) => return Err(ServeError::Io(e.to_string())),
            }
        }
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, sim: &SimRequest) -> Result<SimResponse, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = ServeRequest {
            id,
            version: WIRE_VERSION,
            sim: sim.clone(),
        };
        let line = serde_json::to_string(&envelope).expect("request serializes");
        let reply = self.roundtrip(&line)?;
        serde_json::from_str(&reply)
            .map_err(|e| ServeError::Io(format!("unparseable response: {e:?}")))
    }

    /// Sends one session command (open/delta/close — see
    /// [`SessionRequestBuilder`](aurora_core::SessionRequestBuilder))
    /// and blocks for its response.
    pub fn session(&mut self, command: &SessionCommand) -> Result<SimResponse, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = SessionLine {
            id,
            version: WIRE_VERSION,
            session: command.clone(),
        };
        let line = serde_json::to_string(&envelope).expect("session line serializes");
        let reply = self.roundtrip(&line)?;
        serde_json::from_str(&reply)
            .map_err(|e| ServeError::Io(format!("unparseable response: {e:?}")))
    }

    /// Sends one admin command (`health`, `stats`, `metrics`,
    /// `flights`) and blocks for its reply as a raw JSON value.
    pub fn admin(&mut self, command: &str) -> Result<serde_json::Value, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = serde_json::Value::Map(vec![
            ("id".to_string(), serde_json::Value::UInt(id)),
            (
                "admin".to_string(),
                serde_json::Value::Str(command.to_string()),
            ),
        ]);
        let line = serde_json::to_string(&envelope).expect("admin request serializes");
        let reply = self.roundtrip(&line)?;
        serde_json::from_str(&reply)
            .map_err(|e| ServeError::Io(format!("unparseable admin reply: {e:?}")))
    }
}

/// `UnixStream::connect` has no native timeout in std; run the connect
/// on a scratch thread and give up waiting after `budget`. The thread
/// is detached on timeout — a connect that eventually lands is dropped
/// (closing the stream), one that fails dies quietly.
fn connect_unix_timeout(path: PathBuf, budget: Duration) -> Result<UnixStream, ServeError> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(UnixStream::connect(&path));
    });
    match rx.recv_timeout(budget) {
        Ok(result) => result.map_err(ServeError::from),
        Err(_) => Err(ServeError::Timeout {
            ms: budget.as_millis() as u64,
        }),
    }
}

/// TCP connect with std's native per-address timeout, trying each
/// resolved address under the same budget.
fn connect_tcp_timeout(addr: &str, budget: Duration) -> Result<TcpStream, ServeError> {
    let addrs: Vec<_> = addr.to_socket_addrs().map_err(ServeError::from)?.collect();
    let mut last = ServeError::Io(format!("{addr}: no addresses resolved"));
    for a in addrs {
        match TcpStream::connect_timeout(&a, budget) {
            Ok(stream) => return Ok(stream),
            Err(e) if e.kind() == ErrorKind::TimedOut => {
                last = ServeError::Timeout {
                    ms: budget.as_millis() as u64,
                }
            }
            Err(e) => last = ServeError::from(e),
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_grammar() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/a.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/a.sock"))
        );
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7700"),
            Endpoint::Tcp("127.0.0.1:7700".to_string())
        );
        assert_eq!(
            Endpoint::parse("/tmp/bare.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/bare.sock")),
            "bare paths are unix sockets"
        );
    }

    #[test]
    fn connect_timeout_to_missing_unix_socket_is_an_error() {
        let err = match Client::connect_with(
            &Endpoint::Unix(PathBuf::from("/tmp/aurora-definitely-missing.sock")),
            ClientOptions::timeout(Duration::from_millis(200)),
        ) {
            Ok(_) => panic!("connecting to a missing socket must fail"),
            Err(e) => e,
        };
        // refused immediately (Io), never a hang; a slow filesystem
        // could legitimately surface the budget instead
        assert!(
            matches!(err, ServeError::Io(_) | ServeError::Timeout { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn read_deadline_times_out_on_a_mute_server() {
        // a listener that accepts and then never answers
        let sock = std::env::temp_dir().join(format!("aurora-mute-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        let listener = UnixListener::bind(&sock).expect("bind");
        let server = std::thread::spawn(move || {
            // hold the connection open, answer nothing
            let (stream, _) = listener.accept().expect("accept");
            std::thread::sleep(Duration::from_millis(500));
            drop(stream);
        });
        let mut client = Client::connect_with(
            &Endpoint::Unix(sock.clone()),
            ClientOptions {
                connect_timeout: Some(Duration::from_secs(1)),
                read_timeout: Some(Duration::from_millis(100)),
            },
        )
        .expect("connect");
        let err = client
            .roundtrip("{\"id\":1,\"admin\":\"health\"}")
            .unwrap_err();
        assert!(
            matches!(err, ServeError::Timeout { ms: 100 }),
            "mute server must cost a typed timeout, got {err:?}"
        );
        server.join().unwrap();
        let _ = std::fs::remove_file(&sock);
    }
}
