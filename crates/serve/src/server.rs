//! The newline-delimited-JSON transport: listener, per-connection
//! protocol loop, and a small blocking client.
//!
//! Wire format (one JSON document per line, both directions):
//!
//! ```text
//! → {"id": 7, "sim": { ...SimRequest... }}
//! ← {"id": 7, "digest": "…16 hex…", "cached": false,
//!    "report": { ...SimReport... }, "error": null}
//! ```
//!
//! A line that fails to parse gets a `bad_request` response with the
//! request id when one could be recovered (id `0` otherwise); the
//! connection stays open. Requests on one connection are answered in
//! order. Concurrency comes from concurrent connections — each gets its
//! own thread, and the bounded admission queue inside [`SimService`]
//! does the real scheduling.

use crate::error::ServeError;
use crate::service::SimService;
use aurora_core::{SimRequest, SimResponse};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One request line: a client-chosen id plus the simulation request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    pub id: u64,
    pub sim: SimRequest,
}

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq)]
pub enum Endpoint {
    /// A Unix-domain socket at the given path (removed on bind and on
    /// shutdown).
    Unix(PathBuf),
    /// A TCP listen address, e.g. `127.0.0.1:7700`.
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// Serves `service` on `endpoint` until `shutdown` becomes true (the
/// signal handler's flag), then drains and returns. Blocks the calling
/// thread for the daemon's lifetime.
pub fn serve(
    service: Arc<SimService>,
    endpoint: &Endpoint,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    let listener = match endpoint {
        Endpoint::Unix(path) => {
            // a stale socket file from a crashed daemon would fail the
            // bind; nothing can be listening on it if we can remove it
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Listener::Unix(l)
        }
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            Listener::Tcp(l)
        }
    };

    // Nonblocking accept + poll: the listener wakes every few tens of
    // milliseconds to observe the shutdown flag — no signal-safe
    // self-pipe machinery needed. Accepted streams get a short read
    // timeout so idle connection threads can observe the flag too (an
    // idle client must not hold up a drain).
    const POLL: Duration = Duration::from_millis(25);
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        let accepted: Option<Box<dyn Conn>> = match &listener {
            Listener::Unix(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_read_timeout(Some(POLL))?;
                    Some(Box::new(stream))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_read_timeout(Some(POLL))?;
                    Some(Box::new(stream))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
        };
        match accepted {
            Some(conn) => {
                let service = Arc::clone(&service);
                let shutdown = Arc::clone(&shutdown);
                connections.push(std::thread::spawn(move || {
                    let _ = handle_connection(conn, &service, &shutdown);
                }));
            }
            None => std::thread::sleep(POLL),
        }
        connections.retain(|h| !h.is_finished());
    }

    // Drain: stop admission, finish queued work, then wait for the
    // connection threads to flush their final responses.
    service.drain();
    for h in connections {
        let _ = h.join();
    }
    if let Endpoint::Unix(path) = endpoint {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

/// A bidirectional stream that can split into an owned reader + writer.
trait Conn: Send {
    fn split(self: Box<Self>) -> std::io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)>;
}

impl Conn for UnixStream {
    fn split(self: Box<Self>) -> std::io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
        let reader = self.try_clone()?;
        Ok((Box::new(BufReader::new(reader)), Box::new(*self)))
    }
}

impl Conn for TcpStream {
    fn split(self: Box<Self>) -> std::io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
        let reader = self.try_clone()?;
        Ok((Box::new(BufReader::new(reader)), Box::new(*self)))
    }
}

fn handle_connection(
    conn: Box<dyn Conn>,
    service: &SimService,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let (mut reader, mut writer) = conn.split()?;
    let mut line = String::new();
    loop {
        line.clear();
        // Assemble one line, polling the shutdown flag on every read
        // timeout. `read_line` keeps partially-read bytes in `line`, so
        // resuming after a timeout never loses data.
        let eof = loop {
            match reader.read_line(&mut line) {
                Ok(0) => break true,
                Ok(_) => break !line.ends_with('\n'),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            }
        };
        if !line.trim().is_empty() {
            let response = respond(service, &line);
            let mut out = serde_json::to_string(&response).expect("response serializes");
            out.push('\n');
            writer.write_all(out.as_bytes())?;
            writer.flush()?;
        }
        if eof {
            return Ok(());
        }
    }
}

/// Answers one request line (the whole protocol, transport aside).
pub fn respond(service: &SimService, line: &str) -> SimResponse {
    let parsed: Result<ServeRequest, _> = serde_json::from_str(line);
    match parsed {
        Err(e) => {
            // A malformed line still deserves an addressed reply when
            // the id field itself was readable.
            let id = recover_id(line);
            SimResponse::err(
                id,
                "",
                ServeError::BadRequest(format!("unparseable request: {e:?}")).to_wire(),
            )
        }
        Ok(req) => match service.handle(&req.sim) {
            Ok(outcome) => SimResponse::ok(
                req.id,
                outcome.digest,
                outcome.cached,
                (*outcome.report).clone(),
            ),
            Err(e) => SimResponse::err(req.id, req.sim.digest(), e.to_wire()),
        },
    }
}

/// Best-effort extraction of the `id` from a line that failed to parse
/// as a full envelope.
fn recover_id(line: &str) -> u64 {
    #[derive(Deserialize)]
    struct IdOnly {
        id: u64,
    }
    serde_json::from_str::<serde_json::Value>(line)
        .ok()
        .and_then(|v| IdOnly::from_value(&v).ok().map(|i| i.id))
        .unwrap_or(0)
}

/// A small blocking client for the NDJSON protocol, used by
/// `serve_bench` and the smoke tests.
pub struct Client {
    reader: Box<dyn BufRead + Send>,
    writer: Box<dyn Write + Send>,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(endpoint: &Endpoint) -> Result<Self, ServeError> {
        let (reader, writer): (Box<dyn BufRead + Send>, Box<dyn Write + Send>) = match endpoint {
            Endpoint::Unix(path) => Box::new(UnixStream::connect(path)?).split()?,
            Endpoint::Tcp(addr) => Box::new(TcpStream::connect(addr.as_str())?).split()?,
        };
        Ok(Self {
            reader,
            writer,
            next_id: 1,
        })
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, sim: &SimRequest) -> Result<SimResponse, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = ServeRequest {
            id,
            sim: sim.clone(),
        };
        let mut line = serde_json::to_string(&envelope).expect("request serializes");
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServeError::Io("connection closed by daemon".into()));
        }
        serde_json::from_str(reply.trim_end())
            .map_err(|e| ServeError::Io(format!("unparseable response: {e:?}")))
    }
}
