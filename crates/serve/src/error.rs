//! Typed service errors and their wire form.

use aurora_core::{SimError, WireError};
use std::fmt;

/// Everything the service can answer *instead of* a report. Every
/// variant maps to a stable wire `kind`, and the admission-control
/// variants are contractual: a full queue is an immediate
/// [`ServeError::Overloaded`], never a blocked connection.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded admission queue was full; retry later (or against a
    /// less loaded instance). Carries the observed depth and the cap.
    Overloaded { queued: usize, capacity: usize },
    /// The caller's per-request budget elapsed. The simulation itself is
    /// not cancelled — it completes and warms the cache.
    Timeout { ms: u64 },
    /// The daemon is draining after SIGTERM and accepts no new work.
    ShuttingDown,
    /// The cluster router found no healthy worker shard to route to
    /// (all down, draining, or the retry budget ran out).
    Unavailable(String),
    /// The request line was not a valid `SimRequest` envelope.
    BadRequest(String),
    /// The engine rejected the request (typed [`SimError`]).
    Sim(SimError),
    /// A transport-level failure talking to a client.
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { queued, capacity } => {
                write!(f, "overloaded: {queued} queued >= capacity {capacity}")
            }
            ServeError::Timeout { ms } => write!(f, "timed out after {ms} ms"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Unavailable(msg) => write!(f, "no shard available: {msg}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Sim(e) => write!(f, "simulation error: {e}"),
            ServeError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

impl ServeError {
    /// Stable machine-readable kind (the wire error code).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Timeout { .. } => "timeout",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Unavailable(_) => "unavailable",
            ServeError::BadRequest(_) => "bad_request",
            // nested SimError kinds mostly surface through the message;
            // the top-level code tells clients which subsystem rejected
            // them — except the contract-level kinds clients must branch
            // on (version gating and session lifecycle), which pass
            // through verbatim
            ServeError::Sim(e) => match e {
                SimError::Internal(_) => "internal",
                SimError::UnsupportedVersion { .. } => "unsupported_version",
                SimError::UnknownSession(_) => "unknown_session",
                SimError::Delta(_) => "invalid_delta",
                _ => "sim",
            },
            ServeError::Io(_) => "io",
        }
    }

    /// The error as it appears in a [`SimResponse`] envelope.
    pub fn to_wire(&self) -> WireError {
        WireError::new(self.kind(), self.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(
            ServeError::Overloaded {
                queued: 4,
                capacity: 4
            }
            .kind(),
            "overloaded"
        );
        assert_eq!(ServeError::Timeout { ms: 10 }.kind(), "timeout");
        assert_eq!(ServeError::ShuttingDown.kind(), "shutting_down");
        assert_eq!(
            ServeError::Unavailable("all shards down".into()).kind(),
            "unavailable"
        );
        assert_eq!(ServeError::Sim(SimError::EmptyLayers).kind(), "sim");
        assert_eq!(
            ServeError::Sim(SimError::Internal("x".into())).kind(),
            "internal"
        );
        let w = ServeError::BadRequest("no sim field".into()).to_wire();
        assert_eq!(w.kind, "bad_request");
        assert!(w.message.contains("no sim field"));
    }
}
