//! One worker shard as the cluster router sees it: an endpoint, a
//! probed health state, a small pool of reusable client connections,
//! and — for router-spawned workers — a supervised process that is
//! respawned with bounded backoff when it dies.
//!
//! A [`Backend`] never runs engine work itself; it is the router-side
//! bookkeeping for a worker daemon reachable over the NDJSON protocol.
//! Supervision is abstracted behind [`WorkerLauncher`] /
//! [`WorkerHandle`] so the same probe-and-heal loop drives real
//! `aurora_serve` child processes in production ([`ProcessLauncher`])
//! and in-process `serve()` threads in the test suite
//! ([`ThreadLauncher`]) — the respawn logic is identical, only the
//! "kill" differs.

use crate::error::ServeError;
use crate::server::{serve, Client, ClientOptions, Endpoint};
use crate::service::{ServeConfig, SimService};
use aurora_core::Telemetry;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A shard's probed state. Routing only targets [`BackendHealth::Ok`]
/// and (optimistically, before the first probe lands)
/// [`BackendHealth::Unknown`] shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendHealth {
    /// Never probed yet; treated as routable so a cold router does not
    /// reject its first requests.
    Unknown,
    /// The worker answered `{"admin":"health"}` with `ok`.
    Ok,
    /// The worker answered `draining` — it finishes in-flight work but
    /// must get nothing new.
    Draining,
    /// The probe could not connect or got no answer.
    Down,
}

impl BackendHealth {
    /// Stable wire label (the health reply's `health` field).
    pub fn label(&self) -> &'static str {
        match self {
            BackendHealth::Unknown => "unknown",
            BackendHealth::Ok => "ok",
            BackendHealth::Draining => "draining",
            BackendHealth::Down => "down",
        }
    }

    /// Whether new requests may be routed to a shard in this state.
    pub fn routable(&self) -> bool {
        matches!(self, BackendHealth::Ok | BackendHealth::Unknown)
    }
}

/// A running worker the router supervises. `terminate` requests a
/// graceful stop (the worker drains in-flight requests first), `wait`
/// blocks until it has exited.
pub trait WorkerHandle: Send {
    /// Asks the worker to stop gracefully (SIGTERM for processes, the
    /// shutdown flag for threads). Idempotent, non-blocking.
    fn terminate(&mut self);

    /// Blocks until the worker has fully exited.
    fn wait(&mut self);

    /// OS pid when the worker is a process (`None` for thread workers).
    /// The cluster bench uses this to kill a shard mid-run.
    fn pid(&self) -> Option<u32>;
}

/// Starts (or restarts) the worker behind one endpoint. A launcher must
/// be re-invocable: every respawn calls it again.
pub trait WorkerLauncher: Send + Sync {
    fn launch(&self) -> Result<Box<dyn WorkerHandle>, ServeError>;
}

/// Launches a real worker daemon: `exe args...` (typically the
/// `aurora_serve` binary itself with `--socket <shard socket>`).
pub struct ProcessLauncher {
    pub exe: PathBuf,
    pub args: Vec<String>,
}

struct ProcessHandle {
    child: std::process::Child,
}

extern "C" {
    // already linked through std; same pattern as the daemon's signal()
    fn kill(pid: i32, sig: i32) -> i32;
}
const SIGTERM: i32 = 15;

/// How long a freshly launched worker gets to bind its socket before a
/// failed probe may respawn it.
const LAUNCH_GRACE: Duration = Duration::from_millis(750);

impl WorkerHandle for ProcessHandle {
    fn terminate(&mut self) {
        // SIGTERM, not Child::kill's SIGKILL: the worker must drain its
        // in-flight requests and unlink its socket on the way out
        unsafe {
            kill(self.child.id() as i32, SIGTERM);
        }
    }

    fn wait(&mut self) {
        let _ = self.child.wait();
    }

    fn pid(&self) -> Option<u32> {
        Some(self.child.id())
    }
}

impl WorkerLauncher for ProcessLauncher {
    fn launch(&self) -> Result<Box<dyn WorkerHandle>, ServeError> {
        let child = std::process::Command::new(&self.exe)
            .args(&self.args)
            .spawn()
            .map_err(|e| ServeError::Io(format!("spawn {}: {e}", self.exe.display())))?;
        Ok(Box::new(ProcessHandle { child }))
    }
}

/// Launches an in-process worker: a fresh [`SimService`] served on
/// `endpoint` from its own thread. Used by the test suite (and handy
/// for single-binary experiments) — "killing" one is flipping its
/// shutdown flag, so the router's respawn path is exercisable without
/// real child processes.
pub struct ThreadLauncher {
    pub endpoint: Endpoint,
    pub config: ServeConfig,
}

struct ThreadHandle {
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl WorkerHandle for ThreadHandle {
    fn terminate(&mut self) {
        self.shutdown
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }

    fn wait(&mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    fn pid(&self) -> Option<u32> {
        None
    }
}

impl WorkerLauncher for ThreadLauncher {
    fn launch(&self) -> Result<Box<dyn WorkerHandle>, ServeError> {
        let service = Arc::new(SimService::new(self.config, Telemetry::enabled()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let endpoint = self.endpoint.clone();
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name(format!("thread-worker-{endpoint}"))
            .spawn(move || {
                let _ = serve(service, &endpoint, flag);
            })
            .map_err(|e| ServeError::Io(format!("spawn worker thread: {e}")))?;
        Ok(Box::new(ThreadHandle {
            shutdown,
            thread: Some(thread),
        }))
    }
}

struct BackendState {
    health: BackendHealth,
    /// Probe failures since the last success; drives the backoff.
    consecutive_failures: u32,
    /// Earliest instant the next respawn attempt may run.
    next_attempt: Instant,
    /// Completed respawns over the backend's lifetime.
    respawns: u64,
    handle: Option<Box<dyn WorkerHandle>>,
}

/// One worker shard: endpoint + health + connection pool + optional
/// supervision. Shared between the router's connection threads (which
/// check out pooled clients) and its prober thread (which heals).
pub struct Backend {
    /// Stable shard name — the rendezvous-hash key, so affinity
    /// survives router restarts as long as names do.
    pub name: String,
    pub endpoint: Endpoint,
    launcher: Option<Arc<dyn WorkerLauncher>>,
    state: Mutex<BackendState>,
    pool: Mutex<Vec<Client>>,
}

impl Backend {
    fn new(
        name: impl Into<String>,
        endpoint: Endpoint,
        launcher: Option<Arc<dyn WorkerLauncher>>,
    ) -> Self {
        Self {
            name: name.into(),
            endpoint,
            launcher,
            state: Mutex::new(BackendState {
                health: BackendHealth::Unknown,
                consecutive_failures: 0,
                next_attempt: Instant::now(),
                respawns: 0,
                handle: None,
            }),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// A shard somebody else operates: probed and routed to, never
    /// (re)spawned.
    pub fn external(name: impl Into<String>, endpoint: Endpoint) -> Self {
        Self::new(name, endpoint, None)
    }

    /// A shard this router owns: launched by [`Backend::start`],
    /// respawned by the probe loop, terminated on drain.
    pub fn supervised(
        name: impl Into<String>,
        endpoint: Endpoint,
        launcher: Arc<dyn WorkerLauncher>,
    ) -> Self {
        Self::new(name, endpoint, Some(launcher))
    }

    /// The last probed health.
    pub fn health(&self) -> BackendHealth {
        self.state.lock().expect("backend state").health
    }

    /// The supervised worker's pid, when it is a process.
    pub fn pid(&self) -> Option<u32> {
        self.state
            .lock()
            .expect("backend state")
            .handle
            .as_ref()
            .and_then(|h| h.pid())
    }

    /// Completed respawns so far.
    pub fn respawns(&self) -> u64 {
        self.state.lock().expect("backend state").respawns
    }

    /// Launches the supervised worker (no-op for external shards).
    pub fn start(&self) -> Result<(), ServeError> {
        let Some(launcher) = &self.launcher else {
            return Ok(());
        };
        let handle = launcher.launch()?;
        let mut st = self.state.lock().expect("backend state");
        st.handle = Some(handle);
        // bind grace: the first probes may race the worker's listener
        // coming up — failing ones must not trigger a spurious respawn
        st.next_attempt = Instant::now() + LAUNCH_GRACE;
        Ok(())
    }

    /// Gracefully stops the supervised worker: terminate, then wait for
    /// it to finish draining. External shards are only marked down so
    /// the router stops routing to them.
    pub fn stop(&self) {
        let handle = {
            let mut st = self.state.lock().expect("backend state");
            st.health = BackendHealth::Down;
            st.handle.take()
        };
        if let Some(mut handle) = handle {
            handle.terminate();
            handle.wait();
        }
        self.clear_pool();
    }

    /// Marks the shard down after a forwarding failure — the prober
    /// will confirm and heal. Pooled connections are dropped: they
    /// point at a dead peer.
    pub(crate) fn mark_down(&self) {
        self.state.lock().expect("backend state").health = BackendHealth::Down;
        self.clear_pool();
    }

    /// Marks the shard draining (it answered `shutting_down`): stop
    /// routing new work, keep pooled connections for in-flight replies.
    pub(crate) fn mark_draining(&self) {
        self.state.lock().expect("backend state").health = BackendHealth::Draining;
    }

    /// Borrows a pooled client connection, if one is idle.
    pub(crate) fn checkout(&self) -> Option<Client> {
        self.pool.lock().expect("backend pool").pop()
    }

    /// Returns a healthy client connection to the pool.
    pub(crate) fn checkin(&self, client: Client) {
        const POOL_CAP: usize = 16;
        let mut pool = self.pool.lock().expect("backend pool");
        if pool.len() < POOL_CAP {
            pool.push(client);
        }
    }

    fn clear_pool(&self) {
        self.pool.lock().expect("backend pool").clear();
    }

    /// One probe cycle: health-check the worker, update the state, and
    /// — for supervised shards found down — respawn it under bounded
    /// exponential backoff (`backoff_base · 2^(failures−1)`, capped at
    /// `backoff_cap`). Called from the router's prober thread; the
    /// state lock is never held across I/O.
    pub(crate) fn probe_and_heal(
        &self,
        options: ClientOptions,
        backoff_base: Duration,
        backoff_cap: Duration,
    ) {
        match probe_health(&self.endpoint, options) {
            Ok(health) => {
                let mut st = self.state.lock().expect("backend state");
                st.health = health;
                st.consecutive_failures = 0;
                st.next_attempt = Instant::now();
            }
            Err(_) => {
                let respawn = {
                    let mut st = self.state.lock().expect("backend state");
                    st.health = BackendHealth::Down;
                    st.consecutive_failures = st.consecutive_failures.saturating_add(1);
                    let due = self.launcher.is_some() && Instant::now() >= st.next_attempt;
                    if due {
                        let exp = st.consecutive_failures.saturating_sub(1).min(16);
                        let backoff = backoff_base.saturating_mul(1u32 << exp).min(backoff_cap);
                        // the successor needs its bind grace too, however
                        // short the backoff step is
                        st.next_attempt = Instant::now() + backoff.max(LAUNCH_GRACE);
                    }
                    due.then(|| (self.launcher.clone(), st.handle.take()))
                };
                self.clear_pool();
                if let Some((launcher, old)) = respawn {
                    // reap the dead worker before starting its successor
                    if let Some(mut old) = old {
                        old.terminate();
                        old.wait();
                    }
                    if let Some(launcher) = launcher {
                        if let Ok(handle) = launcher.launch() {
                            let mut st = self.state.lock().expect("backend state");
                            st.handle = Some(handle);
                            st.respawns += 1;
                        }
                    }
                }
            }
        }
    }
}

/// One health roundtrip against a worker, under the probe budgets.
fn probe_health(endpoint: &Endpoint, options: ClientOptions) -> Result<BackendHealth, ServeError> {
    let mut client = Client::connect_with(endpoint, options)?;
    let reply = client.admin("health")?;
    match reply.get("status").and_then(|v| v.as_str()) {
        Some("ok") => Ok(BackendHealth::Ok),
        Some("draining") => Ok(BackendHealth::Draining),
        other => Err(ServeError::Io(format!(
            "health reply carried status {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_labels_and_routability() {
        assert_eq!(BackendHealth::Ok.label(), "ok");
        assert_eq!(BackendHealth::Down.label(), "down");
        assert!(BackendHealth::Ok.routable());
        assert!(
            BackendHealth::Unknown.routable(),
            "cold shards are routable"
        );
        assert!(!BackendHealth::Draining.routable());
        assert!(!BackendHealth::Down.routable());
    }

    #[test]
    fn external_backend_has_no_pid_and_starts_unknown() {
        let b = Backend::external("w0", Endpoint::Tcp("127.0.0.1:1".into()));
        assert_eq!(b.health(), BackendHealth::Unknown);
        assert_eq!(b.pid(), None);
        assert_eq!(b.respawns(), 0);
        b.start().expect("external start is a no-op");
        b.stop();
        assert_eq!(b.health(), BackendHealth::Down, "stop marks down");
    }

    #[test]
    fn probe_failure_applies_bounded_backoff() {
        // endpoint nobody listens on: every probe fails fast
        let b = Backend::external(
            "w0",
            Endpoint::Unix(PathBuf::from("/tmp/aurora-nonexistent-backend.sock")),
        );
        let opts = ClientOptions::timeout(Duration::from_millis(100));
        for _ in 0..3 {
            b.probe_and_heal(opts, Duration::from_millis(10), Duration::from_millis(40));
        }
        assert_eq!(b.health(), BackendHealth::Down);
        assert_eq!(b.respawns(), 0, "external shards are never respawned");
    }
}
