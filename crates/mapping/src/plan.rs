//! Bypass-segment planning: "the bypassing links will be used to bridge
//! the longest communications for each high-degree vertex" (§IV).
//!
//! Under XY routing, every message to a high-degree vertex `hv` at
//! `(x, y)` finishes its journey on **column `x`** (the vertical leg) and
//! the messages injected by `hv`'s own row peers travel along **row `y`**.
//! For each high-degree vertex we therefore plan:
//!
//! * a vertical segment on column `x` spanning the sender rows' extremes;
//! * a horizontal segment on row `y` spanning the same-row senders'
//!   extremes.
//!
//! Each physical row/column has a single bypass wire, so when several
//! high-degree vertices want a segment on the same row/column the longest
//! requirement wins. (The N-Queen placement makes such collisions rare:
//! S_PEs occupy distinct rows and columns.)

use crate::VertexMapping;
use serde::{Deserialize, Serialize};

/// One planned express segment (crate-neutral mirror of the NoC's
/// `BypassSegment`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentPlan {
    /// Row index (horizontal) or column index (vertical).
    pub index: usize,
    pub from: usize,
    pub to: usize,
}

impl SegmentPlan {
    /// Segment length in hops bridged.
    pub fn span(&self) -> usize {
        self.to - self.from
    }
}

/// The planned bypass configuration for one mapped subgraph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BypassPlan {
    pub rows: Vec<SegmentPlan>,
    pub cols: Vec<SegmentPlan>,
}

/// Plans bypass segments for the communication pattern `edges` (messages
/// flow `src → dst`; for aggregation that is neighbour → centre) under
/// `mapping`. Edges touching vertices outside the mapped range are skipped
/// (they travel via DRAM, not the NoC).
pub fn plan_bypass(mapping: &VertexMapping, edges: impl Iterator<Item = (u32, u32)>) -> BypassPlan {
    let k = mapping.k;
    // per row/col: the widest requested span
    let mut row_span: Vec<Option<(usize, usize)>> = vec![None; k];
    let mut col_span: Vec<Option<(usize, usize)>> = vec![None; k];
    let is_high = |v: u32| mapping.high_degree.contains(&v);

    for (src, dst) in edges {
        if !mapping.range.contains(&src) || !mapping.range.contains(&dst) {
            continue;
        }
        if !is_high(dst) && !is_high(src) {
            continue;
        }
        let (sx, sy) = mapping.coord_of(src);
        let (dx, dy) = mapping.coord_of(dst);
        // XY route: horizontal leg on row sy, vertical leg on column dx.
        if sx != dx {
            let (a, b) = (sx.min(dx), sx.max(dx));
            widen(&mut row_span[sy], a, b);
        }
        if sy != dy {
            let (a, b) = (sy.min(dy), sy.max(dy));
            widen(&mut col_span[dx], a, b);
        }
    }

    let collect = |spans: &[Option<(usize, usize)>]| {
        spans
            .iter()
            .enumerate()
            .filter_map(|(index, s)| {
                s.and_then(|(from, to)| {
                    // an express link over adjacent routers buys nothing
                    (to - from >= 2).then_some(SegmentPlan { index, from, to })
                })
            })
            .collect()
    };
    BypassPlan {
        rows: collect(&row_span),
        cols: collect(&col_span),
    }
}

fn widen(slot: &mut Option<(usize, usize)>, a: usize, b: usize) {
    *slot = Some(match *slot {
        None => (a, b),
        Some((x, y)) => {
            // keep the single widest span (one physical wire per row/col)
            if b - a > y - x {
                (a, b)
            } else {
                (x, y)
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree_aware;
    use aurora_graph::generate;

    #[test]
    fn star_gets_column_bridge() {
        let g = generate::star(16);
        let m = degree_aware::map(0..16, &g.degrees(), 4, 2);
        let plan = plan_bypass(&m, g.edges());
        let (hx, _) = m.coord_of(0);
        // spokes converge on the hub's column
        assert!(
            plan.cols.iter().any(|s| s.index == hx && s.span() >= 2),
            "expected a vertical bridge on column {hx}: {plan:?}"
        );
    }

    #[test]
    fn no_high_degree_no_plan() {
        let g = generate::ring(16); // uniform degree 1: top-(K−1)·C_PE still
                                    // selects vertices, but spans stay short
        let m = degree_aware::map(0..16, &g.degrees(), 4, 2);
        let plan = plan_bypass(&m, g.edges());
        // all planned segments must be genuine (span ≥ 2) and within range
        for s in plan.rows.iter().chain(&plan.cols) {
            assert!(s.span() >= 2);
            assert!(s.index < 4 && s.to < 4);
        }
    }

    #[test]
    fn at_most_one_segment_per_row_and_column() {
        let g = generate::rmat(64, 600, Default::default(), 9);
        let m = degree_aware::map(0..64, &g.degrees(), 4, 4);
        let plan = plan_bypass(&m, g.edges());
        let rows: std::collections::HashSet<_> = plan.rows.iter().map(|s| s.index).collect();
        assert_eq!(rows.len(), plan.rows.len());
        let cols: std::collections::HashSet<_> = plan.cols.iter().map(|s| s.index).collect();
        assert_eq!(cols.len(), plan.cols.len());
    }

    #[test]
    fn out_of_range_edges_ignored() {
        let g = generate::star(16);
        let m = degree_aware::map(0..8, &g.degrees()[..8].to_vec().clone(), 4, 2);
        // edges referencing vertices ≥ 8 must be skipped silently
        let plan = plan_bypass(&m, g.edges());
        for s in plan.rows.iter().chain(&plan.cols) {
            assert!(s.to < 4);
        }
    }
}
