//! Bypass-segment planning: "the bypassing links will be used to bridge
//! the longest communications for each high-degree vertex" (§IV).
//!
//! Under XY routing, every message to a high-degree vertex `hv` at
//! `(x, y)` finishes its journey on **column `x`** (the vertical leg) and
//! the messages injected by `hv`'s own row peers travel along **row `y`**.
//! For each high-degree vertex we therefore plan:
//!
//! * a vertical segment on column `x` spanning the sender rows' extremes;
//! * a horizontal segment on row `y` spanning the same-row senders'
//!   extremes.
//!
//! Each physical row/column has a single bypass wire, so when several
//! high-degree vertices want a segment on the same row/column the longest
//! requirement wins. (The N-Queen placement makes such collisions rare:
//! S_PEs occupy distinct rows and columns.)

use crate::{MapView, VertexMapping};
use serde::{Deserialize, Serialize};

/// One planned express segment (crate-neutral mirror of the NoC's
/// `BypassSegment`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentPlan {
    /// Row index (horizontal) or column index (vertical).
    pub index: usize,
    pub from: usize,
    pub to: usize,
}

impl SegmentPlan {
    /// Segment length in hops bridged.
    pub fn span(&self) -> usize {
        self.to - self.from
    }
}

/// The planned bypass configuration for one mapped subgraph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BypassPlan {
    pub rows: Vec<SegmentPlan>,
    pub cols: Vec<SegmentPlan>,
}

/// Plans bypass segments for the communication pattern `edges` (messages
/// flow `src → dst`; for aggregation that is neighbour → centre) under
/// `mapping`. Edges touching vertices outside the mapped range are skipped
/// (they travel via DRAM, not the NoC).
pub fn plan_bypass(mapping: &VertexMapping, edges: impl Iterator<Item = (u32, u32)>) -> BypassPlan {
    let k = mapping.k;
    // per row/col: the widest requested span
    let mut row_span: Vec<Option<(usize, usize)>> = vec![None; k];
    let mut col_span: Vec<Option<(usize, usize)>> = vec![None; k];
    let is_high = |v: u32| mapping.high_degree.contains(&v);

    for (src, dst) in edges {
        if !mapping.range.contains(&src) || !mapping.range.contains(&dst) {
            continue;
        }
        if !is_high(dst) && !is_high(src) {
            continue;
        }
        let (sx, sy) = mapping.coord_of(src);
        let (dx, dy) = mapping.coord_of(dst);
        // XY route: horizontal leg on row sy, vertical leg on column dx.
        if sx != dx {
            let (a, b) = (sx.min(dx), sx.max(dx));
            widen(&mut row_span[sy], a, b);
        }
        if sy != dy {
            let (a, b) = (sy.min(dy), sy.max(dy));
            widen(&mut col_span[dx], a, b);
        }
    }

    let collect = |spans: &[Option<(usize, usize)>]| {
        spans
            .iter()
            .enumerate()
            .filter_map(|(index, s)| {
                s.and_then(|(from, to)| {
                    // an express link over adjacent routers buys nothing
                    (to - from >= 2).then_some(SegmentPlan { index, from, to })
                })
            })
            .collect()
    };
    BypassPlan {
        rows: collect(&row_span),
        cols: collect(&col_span),
    }
}

/// Reusable working memory for [`plan_bypass_into`]: the per-row/column
/// span slots and the per-vertex high-degree membership flags. The flag
/// slab turns the membership test from an O(N_HN) scan per edge (the
/// historical hot spot of tile precompute) into one byte load, and a
/// warmed-up scratch plans without allocating.
#[derive(Debug, Default)]
pub struct PlanScratch {
    row_span: Vec<Option<(usize, usize)>>,
    col_span: Vec<Option<(usize, usize)>>,
    /// `is_high[v - range.start]`; only the bits set for the current
    /// tile's high-degree list are ever true, and they are cleared again
    /// on exit, so growth is the only cost of a larger tile.
    is_high: Vec<bool>,
}

impl PlanScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`plan_bypass`] over a borrowed [`MapView`], emitting into
/// caller-provided segment buffers (each must hold at least `k` entries
/// — one physical wire per row/column bounds the plan). Returns the
/// number of row and column segments written. The planned segments are
/// bit-identical to [`plan_bypass`]'s.
pub fn plan_bypass_into(
    mapping: &MapView<'_>,
    edges: impl Iterator<Item = (u32, u32)>,
    scratch: &mut PlanScratch,
    rows_out: &mut [SegmentPlan],
    cols_out: &mut [SegmentPlan],
) -> (usize, usize) {
    let k = mapping.k;
    assert!(
        rows_out.len() >= k && cols_out.len() >= k,
        "segment outputs must hold k entries"
    );
    let start = mapping.range.start;
    let n = (mapping.range.end - start) as usize;
    scratch.row_span.clear();
    scratch.row_span.resize(k, None);
    scratch.col_span.clear();
    scratch.col_span.resize(k, None);
    if scratch.is_high.len() < n {
        scratch.is_high.resize(n, false);
    }
    for &hv in mapping.high_degree {
        scratch.is_high[(hv - start) as usize] = true;
    }

    // With no high-degree vertices no edge passes the filter below —
    // skip the O(E) scan outright (the legacy planner's `contains` on an
    // empty list rejects every edge the same way).
    let n_u32 = mapping.range.end - start;
    if !mapping.high_degree.is_empty() {
        for (src, dst) in edges {
            // single-compare range test: out-of-range wraps to a huge value
            let ls = src.wrapping_sub(start);
            let ld = dst.wrapping_sub(start);
            if ls >= n_u32 || ld >= n_u32 {
                continue;
            }
            if !scratch.is_high[ld as usize] && !scratch.is_high[ls as usize] {
                continue;
            }
            let s_pe = mapping.pe_of[ls as usize] as usize;
            let d_pe = mapping.pe_of[ld as usize] as usize;
            let (sx, sy) = (s_pe % k, s_pe / k);
            let (dx, dy) = (d_pe % k, d_pe / k);
            // XY route: horizontal leg on row sy, vertical leg on column dx.
            if sx != dx {
                let (a, b) = (sx.min(dx), sx.max(dx));
                widen(&mut scratch.row_span[sy], a, b);
            }
            if sy != dy {
                let (a, b) = (sy.min(dy), sy.max(dy));
                widen(&mut scratch.col_span[dx], a, b);
            }
        }
    }

    // reset only the flags this tile set; the slab stays warm
    for &hv in mapping.high_degree {
        scratch.is_high[(hv - start) as usize] = false;
    }

    let emit = |spans: &[Option<(usize, usize)>], out: &mut [SegmentPlan]| {
        let mut len = 0usize;
        for (index, s) in spans.iter().enumerate() {
            if let Some((from, to)) = *s {
                // an express link over adjacent routers buys nothing
                if to - from >= 2 {
                    out[len] = SegmentPlan { index, from, to };
                    len += 1;
                }
            }
        }
        len
    };
    let n_rows = emit(&scratch.row_span, rows_out);
    let n_cols = emit(&scratch.col_span, cols_out);
    (n_rows, n_cols)
}

fn widen(slot: &mut Option<(usize, usize)>, a: usize, b: usize) {
    *slot = Some(match *slot {
        None => (a, b),
        Some((x, y)) => {
            // keep the single widest span (one physical wire per row/col)
            if b - a > y - x {
                (a, b)
            } else {
                (x, y)
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree_aware;
    use aurora_graph::generate;

    #[test]
    fn star_gets_column_bridge() {
        let g = generate::star(16);
        let m = degree_aware::map(0..16, &g.degrees(), 4, 2);
        let plan = plan_bypass(&m, g.edges());
        let (hx, _) = m.coord_of(0);
        // spokes converge on the hub's column
        assert!(
            plan.cols.iter().any(|s| s.index == hx && s.span() >= 2),
            "expected a vertical bridge on column {hx}: {plan:?}"
        );
    }

    #[test]
    fn no_high_degree_no_plan() {
        let g = generate::ring(16); // uniform degree 1: top-(K−1)·C_PE still
                                    // selects vertices, but spans stay short
        let m = degree_aware::map(0..16, &g.degrees(), 4, 2);
        let plan = plan_bypass(&m, g.edges());
        // all planned segments must be genuine (span ≥ 2) and within range
        for s in plan.rows.iter().chain(&plan.cols) {
            assert!(s.span() >= 2);
            assert!(s.index < 4 && s.to < 4);
        }
    }

    #[test]
    fn at_most_one_segment_per_row_and_column() {
        let g = generate::rmat(64, 600, Default::default(), 9);
        let m = degree_aware::map(0..64, &g.degrees(), 4, 4);
        let plan = plan_bypass(&m, g.edges());
        let rows: std::collections::HashSet<_> = plan.rows.iter().map(|s| s.index).collect();
        assert_eq!(rows.len(), plan.rows.len());
        let cols: std::collections::HashSet<_> = plan.cols.iter().map(|s| s.index).collect();
        assert_eq!(cols.len(), plan.cols.len());
    }

    #[test]
    fn into_variant_matches_legacy_with_reused_scratch() {
        let mut scratch = PlanScratch::new();
        for seed in 0..6 {
            let g = generate::rmat(64, 600, Default::default(), seed);
            let m = degree_aware::map(0..64, &g.degrees(), 4, 4);
            let legacy = plan_bypass(&m, g.edges());
            let zero = SegmentPlan {
                index: 0,
                from: 0,
                to: 0,
            };
            let mut rows = [zero; 4];
            let mut cols = [zero; 4];
            let (nr, nc) =
                plan_bypass_into(&m.view(), g.edges(), &mut scratch, &mut rows, &mut cols);
            assert_eq!(&rows[..nr], legacy.rows.as_slice());
            assert_eq!(&cols[..nc], legacy.cols.as_slice());
        }
    }

    #[test]
    fn out_of_range_edges_ignored() {
        let g = generate::star(16);
        let m = degree_aware::map(0..8, &g.degrees()[..8].to_vec().clone(), 4, 2);
        // edges referencing vertices ≥ 8 must be skipped silently
        let plan = plan_bypass(&m, g.edges());
        for s in plan.rows.iter().chain(&plan.cols) {
            assert!(s.to < 4);
        }
    }
}
