//! Workload mapping onto the PE array — §IV, Algorithm 1.
//!
//! Hashing-based mapping (the CGRA-ME baseline policy) is oblivious to
//! vertex degree, so several high-degree vertices frequently land on the
//! same row or column and their one-to-many aggregation traffic contends
//! for the same links. Aurora's **degree-aware mapping** places the PEs
//! that will host high-degree vertices (`S_PE`s) on an N-Queen pattern —
//! no two share a row, column or diagonal — so each can be served by its
//! row's and column's bypass link without contention.
//!
//! * [`nqueen`] — the N-Queen placement (Algorithm 1 lines 1-12);
//! * [`degree_aware`] — high-degree identification + placement
//!   (lines 13-25);
//! * [`hashing`] — the baseline modulo-hash policy;
//! * [`plan`] — bypass-segment planning ("the bypassing links will be used
//!   to bridge the longest communications for each high-degree vertex").

pub mod degree_aware;
pub mod hashing;
pub mod nqueen;
pub mod plan;

use aurora_telemetry::{Scope, Telemetry};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Which mapping policy produced a [`VertexMapping`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingPolicy {
    /// Algorithm 1.
    DegreeAware,
    /// CGRA-ME-style modulo hashing.
    Hashing,
}

/// The placement of one subgraph's vertices onto a `k × k` PE array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VertexMapping {
    /// Which policy produced this mapping.
    pub policy: MappingPolicy,
    /// The contiguous global-vertex-id range that was mapped.
    pub range: Range<u32>,
    /// `pe_of[v - range.start]` = linear PE id (`y * k + x`).
    pub pe_of: Vec<usize>,
    /// Array radix.
    pub k: usize,
    /// The S_PE positions chosen by the N-Queen step (empty for hashing).
    pub s_pes: Vec<usize>,
    /// The vertices identified as high-degree, in descending degree order.
    pub high_degree: Vec<u32>,
}

impl VertexMapping {
    /// The PE hosting global vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is outside the mapped range.
    pub fn pe_of(&self, v: u32) -> usize {
        assert!(self.range.contains(&v), "vertex {v} not in mapped range");
        self.pe_of[(v - self.range.start) as usize]
    }

    /// `(x, y)` coordinate of the PE hosting `v`.
    pub fn coord_of(&self, v: u32) -> (usize, usize) {
        let pe = self.pe_of(v);
        (pe % self.k, pe / self.k)
    }

    /// Number of vertices mapped to each PE.
    pub fn load_per_pe(&self) -> Vec<usize> {
        let mut load = vec![0; self.k * self.k];
        for &pe in &self.pe_of {
            load[pe] += 1;
        }
        load
    }

    /// Counts pairs of high-degree vertices sharing a row plus pairs
    /// sharing a column — the contention measure the degree-aware mapping
    /// drives to zero (its S_PEs are row/column-disjoint by construction).
    pub fn high_degree_conflicts(&self) -> usize {
        let coords: Vec<(usize, usize)> =
            self.high_degree.iter().map(|&v| self.coord_of(v)).collect();
        let mut conflicts = 0;
        for i in 0..coords.len() {
            for j in (i + 1)..coords.len() {
                // co-located vertices share one S_PE (and its bypass), which
                // is not a link conflict
                if coords[i] == coords[j] {
                    continue;
                }
                if coords[i].0 == coords[j].0 || coords[i].1 == coords[j].1 {
                    conflicts += 1;
                }
            }
        }
        conflicts
    }

    /// Mean pairwise Manhattan distance between the S_PE positions — how
    /// far apart the N-Queen step spread the high-degree hosts (0 with
    /// fewer than two S_PEs). A larger spread means the bypass links serve
    /// disjoint regions of the array.
    pub fn s_pe_spread(&self) -> f64 {
        if self.s_pes.len() < 2 {
            return 0.0;
        }
        let coords: Vec<(usize, usize)> = self
            .s_pes
            .iter()
            .map(|&pe| (pe % self.k, pe / self.k))
            .collect();
        let mut total = 0usize;
        let mut pairs = 0usize;
        for i in 0..coords.len() {
            for j in (i + 1)..coords.len() {
                total += coords[i].0.abs_diff(coords[j].0) + coords[i].1.abs_diff(coords[j].1);
                pairs += 1;
            }
        }
        total as f64 / pairs as f64
    }
}

/// Records a mapping's placement quality under `scope`: the row/column
/// conflict count among high-degree vertices (the quantity Algorithm 1
/// drives to zero), the high-degree population, the S_PE spread, and the
/// per-PE load imbalance.
pub fn record_quality(telemetry: &Telemetry, scope: &Scope, mapping: &VertexMapping) {
    if !telemetry.is_enabled() {
        return;
    }
    telemetry.observe(
        "mapping.high_degree_conflicts",
        scope,
        mapping.high_degree_conflicts() as u64,
    );
    telemetry.observe(
        "mapping.high_degree_count",
        scope,
        mapping.high_degree.len() as u64,
    );
    telemetry.gauge_set("mapping.s_pe_spread", scope, mapping.s_pe_spread());
    let load = mapping.load_per_pe();
    let max = load.iter().copied().max().unwrap_or(0);
    let mean = if load.is_empty() {
        0.0
    } else {
        load.iter().sum::<usize>() as f64 / load.len() as f64
    };
    telemetry.gauge_set(
        "mapping.load_imbalance",
        scope,
        if mean > 0.0 { max as f64 / mean } else { 1.0 },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_mapping() -> VertexMapping {
        VertexMapping {
            policy: MappingPolicy::Hashing,
            range: 10..14,
            pe_of: vec![0, 1, 2, 0],
            k: 2,
            s_pes: vec![],
            high_degree: vec![10, 11],
        }
    }

    #[test]
    fn lookup_and_coords() {
        let m = tiny_mapping();
        assert_eq!(m.pe_of(10), 0);
        assert_eq!(m.pe_of(13), 0);
        assert_eq!(m.coord_of(12), (0, 1));
    }

    #[test]
    #[should_panic(expected = "not in mapped range")]
    fn out_of_range_rejected() {
        tiny_mapping().pe_of(9);
    }

    #[test]
    fn load_counts() {
        let m = tiny_mapping();
        assert_eq!(m.load_per_pe(), vec![2, 1, 1, 0]);
    }

    #[test]
    fn conflict_metric() {
        // high-degree at PE 0 (0,0) and PE 1 (1,0): same row → 1 conflict
        let m = tiny_mapping();
        assert_eq!(m.high_degree_conflicts(), 1);
        // co-located pair is not a conflict
        let m2 = VertexMapping {
            high_degree: vec![10, 13],
            ..m
        };
        assert_eq!(m2.high_degree_conflicts(), 0);
    }

    #[test]
    fn spread_of_spaced_spes() {
        let m = VertexMapping {
            s_pes: vec![0, 3], // (0,0) and (1,1) on k=2
            ..tiny_mapping()
        };
        assert_eq!(m.s_pe_spread(), 2.0);
        assert_eq!(tiny_mapping().s_pe_spread(), 0.0, "no S_PEs → 0");
    }

    #[test]
    fn quality_probe_records_conflicts_and_spread() {
        let t = Telemetry::enabled();
        let scope = Scope::model("GCN").layer(0);
        let m = VertexMapping {
            s_pes: vec![0, 3],
            ..tiny_mapping()
        };
        record_quality(&t, &scope, &m);
        let snap = t.snapshot();
        let conflicts = snap
            .histogram_at("mapping.high_degree_conflicts", &scope)
            .unwrap();
        assert_eq!(conflicts.count, 1);
        assert_eq!(conflicts.max, 1); // tiny_mapping has one row conflict
        assert_eq!(snap.gauge_at("mapping.s_pe_spread", &scope), Some(2.0));
        assert!(snap.gauge_at("mapping.load_imbalance", &scope).unwrap() > 1.0);
    }
}
