//! Workload mapping onto the PE array — §IV, Algorithm 1.
//!
//! Hashing-based mapping (the CGRA-ME baseline policy) is oblivious to
//! vertex degree, so several high-degree vertices frequently land on the
//! same row or column and their one-to-many aggregation traffic contends
//! for the same links. Aurora's **degree-aware mapping** places the PEs
//! that will host high-degree vertices (`S_PE`s) on an N-Queen pattern —
//! no two share a row, column or diagonal — so each can be served by its
//! row's and column's bypass link without contention.
//!
//! * [`nqueen`] — the N-Queen placement (Algorithm 1 lines 1-12);
//! * [`degree_aware`] — high-degree identification + placement
//!   (lines 13-25);
//! * [`hashing`] — the baseline modulo-hash policy;
//! * [`plan`] — bypass-segment planning ("the bypassing links will be used
//!   to bridge the longest communications for each high-degree vertex").

pub mod degree_aware;
pub mod hashing;
pub mod nqueen;
pub mod plan;

use aurora_telemetry::{Scope, Telemetry};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Which mapping policy produced a [`VertexMapping`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingPolicy {
    /// Algorithm 1.
    DegreeAware,
    /// CGRA-ME-style modulo hashing.
    Hashing,
}

/// The placement of one subgraph's vertices onto a `k × k` PE array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VertexMapping {
    /// Which policy produced this mapping.
    pub policy: MappingPolicy,
    /// The contiguous global-vertex-id range that was mapped.
    pub range: Range<u32>,
    /// `pe_of[v - range.start]` = linear PE id (`y * k + x`). `u32`
    /// keeps the slab half the size of a word-per-vertex layout — the
    /// engine streams these per tile.
    pub pe_of: Vec<u32>,
    /// Array radix.
    pub k: usize,
    /// The S_PE positions chosen by the N-Queen step (empty for hashing).
    pub s_pes: Vec<usize>,
    /// The vertices identified as high-degree, in descending degree order.
    pub high_degree: Vec<u32>,
}

impl VertexMapping {
    /// A borrowed, allocation-free view of this mapping.
    pub fn view(&self) -> MapView<'_> {
        MapView {
            policy: self.policy,
            range: self.range.clone(),
            pe_of: &self.pe_of,
            k: self.k,
            s_pes: &self.s_pes,
            high_degree: &self.high_degree,
        }
    }

    /// The PE hosting global vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is outside the mapped range.
    pub fn pe_of(&self, v: u32) -> usize {
        assert!(self.range.contains(&v), "vertex {v} not in mapped range");
        self.pe_of[(v - self.range.start) as usize] as usize
    }

    /// `(x, y)` coordinate of the PE hosting `v`.
    pub fn coord_of(&self, v: u32) -> (usize, usize) {
        let pe = self.pe_of(v);
        (pe % self.k, pe / self.k)
    }

    /// Number of vertices mapped to each PE.
    pub fn load_per_pe(&self) -> Vec<usize> {
        self.view().load_per_pe()
    }

    /// Counts pairs of high-degree vertices sharing a row plus pairs
    /// sharing a column — the contention measure the degree-aware mapping
    /// drives to zero (its S_PEs are row/column-disjoint by construction).
    pub fn high_degree_conflicts(&self) -> usize {
        self.view().high_degree_conflicts()
    }

    /// Mean pairwise Manhattan distance between the S_PE positions — how
    /// far apart the N-Queen step spread the high-degree hosts (0 with
    /// fewer than two S_PEs). A larger spread means the bypass links serve
    /// disjoint regions of the array.
    pub fn s_pe_spread(&self) -> f64 {
        self.view().s_pe_spread()
    }
}

/// A borrowed view of one tile's placement — the shape the engine's
/// per-tile kernels consume. [`VertexMapping`] owns its buffers and
/// [`VertexMapping::view`]s them; the engine's arena path slices its
/// per-layer slabs into views directly, so the steady state never
/// materialises an owned mapping at all.
#[derive(Debug, Clone)]
pub struct MapView<'a> {
    /// Which policy produced this mapping.
    pub policy: MappingPolicy,
    /// The contiguous global-vertex-id range that was mapped.
    pub range: Range<u32>,
    /// `pe_of[v - range.start]` = linear PE id (`y * k + x`).
    pub pe_of: &'a [u32],
    /// Array radix.
    pub k: usize,
    /// The S_PE positions chosen by the N-Queen step (empty for hashing).
    pub s_pes: &'a [usize],
    /// The vertices identified as high-degree, in descending degree order.
    pub high_degree: &'a [u32],
}

impl MapView<'_> {
    /// The PE hosting global vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is outside the mapped range.
    pub fn pe_of(&self, v: u32) -> usize {
        assert!(self.range.contains(&v), "vertex {v} not in mapped range");
        self.pe_of[(v - self.range.start) as usize] as usize
    }

    /// `(x, y)` coordinate of the PE hosting `v`.
    pub fn coord_of(&self, v: u32) -> (usize, usize) {
        let pe = self.pe_of(v);
        (pe % self.k, pe / self.k)
    }

    /// Number of vertices mapped to each PE.
    pub fn load_per_pe(&self) -> Vec<usize> {
        let mut load = vec![0; self.k * self.k];
        for &pe in self.pe_of {
            load[pe as usize] += 1;
        }
        load
    }

    /// See [`VertexMapping::high_degree_conflicts`].
    pub fn high_degree_conflicts(&self) -> usize {
        let coords: Vec<(usize, usize)> =
            self.high_degree.iter().map(|&v| self.coord_of(v)).collect();
        let mut conflicts = 0;
        for i in 0..coords.len() {
            for j in (i + 1)..coords.len() {
                // co-located vertices share one S_PE (and its bypass), which
                // is not a link conflict
                if coords[i] == coords[j] {
                    continue;
                }
                if coords[i].0 == coords[j].0 || coords[i].1 == coords[j].1 {
                    conflicts += 1;
                }
            }
        }
        conflicts
    }

    /// See [`VertexMapping::s_pe_spread`].
    pub fn s_pe_spread(&self) -> f64 {
        if self.s_pes.len() < 2 {
            return 0.0;
        }
        let coords: Vec<(usize, usize)> = self
            .s_pes
            .iter()
            .map(|&pe| (pe % self.k, pe / self.k))
            .collect();
        let mut total = 0usize;
        let mut pairs = 0usize;
        for i in 0..coords.len() {
            for j in (i + 1)..coords.len() {
                total += coords[i].0.abs_diff(coords[j].0) + coords[i].1.abs_diff(coords[j].1);
                pairs += 1;
            }
        }
        total as f64 / pairs as f64
    }
}

/// Reusable working memory for the `*_into` mapping kernels: the sort
/// order, per-PE load counters and fill order live here across tiles
/// and layers, so a warmed-up scratch maps without allocating.
#[derive(Debug, Default)]
pub struct MapScratch {
    pub(crate) order: Vec<u32>,
    pub(crate) load: Vec<u32>,
    pub(crate) fill_order: Vec<usize>,
    pub(crate) s_pes: Vec<usize>,
    pub(crate) is_s_pe: Vec<bool>,
    /// The radix `s_pes`/`is_s_pe` were computed for (0 = never).
    pub(crate) s_pes_k: usize,
}

impl MapScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// The N-Queen S_PE positions for radix `k`, recomputed only when
    /// the radix changes.
    pub fn s_pes_for(&mut self, k: usize) -> &[usize] {
        self.prepare_s_pes(k);
        &self.s_pes
    }

    pub(crate) fn prepare_s_pes(&mut self, k: usize) {
        if self.s_pes_k != k {
            self.s_pes = nqueen::s_pe_positions(k);
            self.is_s_pe.clear();
            self.is_s_pe.resize(k * k, false);
            for &p in &self.s_pes {
                self.is_s_pe[p] = true;
            }
            self.s_pes_k = k;
        }
    }
}

/// Upper bound on the number of high-degree vertices either policy can
/// emit for a tile of `n` vertices: `N_HN = (K − 1) · C_PE`, clamped to
/// the tile population. Callers of the `*_into` kernels size their
/// high-degree output slices with this.
pub fn high_degree_cap(n: usize, k: usize, c_pe: usize) -> usize {
    (k.saturating_sub(1) * c_pe).min(n)
}

/// Records a mapping's placement quality under `scope`: the row/column
/// conflict count among high-degree vertices (the quantity Algorithm 1
/// drives to zero), the high-degree population, the S_PE spread, and the
/// per-PE load imbalance.
pub fn record_quality(telemetry: &Telemetry, scope: &Scope, mapping: &VertexMapping) {
    record_quality_view(telemetry, scope, &mapping.view())
}

/// [`record_quality`] over a borrowed [`MapView`]. Allocation-free when
/// telemetry is disabled (the metric computations only run when a
/// recorder is attached).
pub fn record_quality_view(telemetry: &Telemetry, scope: &Scope, mapping: &MapView<'_>) {
    if !telemetry.is_enabled() {
        return;
    }
    telemetry.observe(
        "mapping.high_degree_conflicts",
        scope,
        mapping.high_degree_conflicts() as u64,
    );
    telemetry.observe(
        "mapping.high_degree_count",
        scope,
        mapping.high_degree.len() as u64,
    );
    telemetry.gauge_set("mapping.s_pe_spread", scope, mapping.s_pe_spread());
    let load = mapping.load_per_pe();
    let max = load.iter().copied().max().unwrap_or(0);
    let mean = if load.is_empty() {
        0.0
    } else {
        load.iter().sum::<usize>() as f64 / load.len() as f64
    };
    telemetry.gauge_set(
        "mapping.load_imbalance",
        scope,
        if mean > 0.0 { max as f64 / mean } else { 1.0 },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_mapping() -> VertexMapping {
        VertexMapping {
            policy: MappingPolicy::Hashing,
            range: 10..14,
            pe_of: vec![0, 1, 2, 0],
            k: 2,
            s_pes: vec![],
            high_degree: vec![10, 11],
        }
    }

    #[test]
    fn lookup_and_coords() {
        let m = tiny_mapping();
        assert_eq!(m.pe_of(10), 0);
        assert_eq!(m.pe_of(13), 0);
        assert_eq!(m.coord_of(12), (0, 1));
    }

    #[test]
    #[should_panic(expected = "not in mapped range")]
    fn out_of_range_rejected() {
        tiny_mapping().pe_of(9);
    }

    #[test]
    fn load_counts() {
        let m = tiny_mapping();
        assert_eq!(m.load_per_pe(), vec![2, 1, 1, 0]);
    }

    #[test]
    fn conflict_metric() {
        // high-degree at PE 0 (0,0) and PE 1 (1,0): same row → 1 conflict
        let m = tiny_mapping();
        assert_eq!(m.high_degree_conflicts(), 1);
        // co-located pair is not a conflict
        let m2 = VertexMapping {
            high_degree: vec![10, 13],
            ..m
        };
        assert_eq!(m2.high_degree_conflicts(), 0);
    }

    #[test]
    fn spread_of_spaced_spes() {
        let m = VertexMapping {
            s_pes: vec![0, 3], // (0,0) and (1,1) on k=2
            ..tiny_mapping()
        };
        assert_eq!(m.s_pe_spread(), 2.0);
        assert_eq!(tiny_mapping().s_pe_spread(), 0.0, "no S_PEs → 0");
    }

    #[test]
    fn quality_probe_records_conflicts_and_spread() {
        let t = Telemetry::enabled();
        let scope = Scope::model("GCN").layer(0);
        let m = VertexMapping {
            s_pes: vec![0, 3],
            ..tiny_mapping()
        };
        record_quality(&t, &scope, &m);
        let snap = t.snapshot();
        let conflicts = snap
            .histogram_at("mapping.high_degree_conflicts", &scope)
            .unwrap();
        assert_eq!(conflicts.count, 1);
        assert_eq!(conflicts.max, 1); // tiny_mapping has one row conflict
        assert_eq!(snap.gauge_at("mapping.s_pe_spread", &scope), Some(2.0));
        assert!(snap.gauge_at("mapping.load_imbalance", &scope).unwrap() > 1.0);
    }
}
