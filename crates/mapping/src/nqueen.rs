//! The N-Queen placement of Algorithm 1 (lines 1-12): one S_PE per row,
//! no two sharing a column or diagonal.

/// Returns, for each row `r` of a `k × k` array, the column of its S_PE —
/// a deterministic solution (backtracking for small radixes, min-conflicts
/// local search for large ones; both yield the "fixed identification
/// pattern" of §IV). Returns `None` for the unsolvable radixes 2 and 3.
pub fn solve(k: usize) -> Option<Vec<usize>> {
    match k {
        0 => Some(Vec::new()),
        1 => Some(vec![0]),
        2 | 3 => None, // provably unsolvable
        _ if k < 8 => {
            let mut cols = Vec::with_capacity(k);
            backtrack(k, &mut cols).then_some(cols)
        }
        // Backtracking blows up around k ≈ 30 (the paper's 32 × 32 array);
        // deterministic min-conflicts converges in microseconds there.
        _ => Some(min_conflicts(k)),
    }
}

fn backtrack(k: usize, cols: &mut Vec<usize>) -> bool {
    if cols.len() == k {
        return true;
    }
    let row = cols.len();
    for c in 0..k {
        if can_place(cols, row, c) {
            cols.push(c);
            if backtrack(k, cols) {
                return true;
            }
            cols.pop();
        }
    }
    false
}

/// Deterministic min-conflicts local search (queens constrained to one per
/// row and one per column; swaps repair the diagonals). Always terminates:
/// restarts with a new seed until a valid placement is found — for k ≥ 4 a
/// solution always exists.
fn min_conflicts(k: usize) -> Vec<usize> {
    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    let mut rand = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    loop {
        // start from a random permutation: rows and columns already unique
        let mut cols: Vec<usize> = (0..k).collect();
        for i in (1..k).rev() {
            let j = (rand() % (i as u64 + 1)) as usize;
            cols.swap(i, j);
        }
        // diagonal occupancy counts
        let mut d1 = vec![0i32; 2 * k]; // row + col
        let mut d2 = vec![0i32; 2 * k]; // row − col + k
        for (r, &c) in cols.iter().enumerate() {
            d1[r + c] += 1;
            d2[r + k - c] += 1;
        }
        let conflicts =
            |r: usize, c: usize, d1: &[i32], d2: &[i32]| (d1[r + c] - 1) + (d2[r + k - c] - 1);
        let mut steps = 0usize;
        let budget = 60 * k;
        loop {
            // find a conflicted queen
            let start = (rand() % k as u64) as usize;
            let mut picked = None;
            for off in 0..k {
                let r = (start + off) % k;
                if conflicts(r, cols[r], &d1, &d2) > 0 {
                    picked = Some(r);
                    break;
                }
            }
            let Some(r1) = picked else {
                return cols; // no conflicts anywhere: solved
            };
            // swap with the partner that lowers total diagonal conflicts most
            let mut best: Option<(i32, usize)> = None;
            for r2 in 0..k {
                if r2 == r1 {
                    continue;
                }
                let before = conflicts(r1, cols[r1], &d1, &d2) + conflicts(r2, cols[r2], &d1, &d2);
                // simulate swap
                let (c1, c2) = (cols[r1], cols[r2]);
                let mut e1 = d1.clone();
                let mut e2 = d2.clone();
                e1[r1 + c1] -= 1;
                e2[r1 + k - c1] -= 1;
                e1[r2 + c2] -= 1;
                e2[r2 + k - c2] -= 1;
                e1[r1 + c2] += 1;
                e2[r1 + k - c2] += 1;
                e1[r2 + c1] += 1;
                e2[r2 + k - c1] += 1;
                let after = conflicts(r1, c2, &e1, &e2) + conflicts(r2, c1, &e1, &e2);
                let gain = before - after;
                if best.is_none_or(|(g, _)| gain > g) {
                    best = Some((gain, r2));
                }
            }
            if let Some((gain, r2)) = best {
                if gain > 0 || rand() % 8 == 0 {
                    let (c1, c2) = (cols[r1], cols[r2]);
                    d1[r1 + c1] -= 1;
                    d2[r1 + k - c1] -= 1;
                    d1[r2 + c2] -= 1;
                    d2[r2 + k - c2] -= 1;
                    d1[r1 + c2] += 1;
                    d2[r1 + k - c2] += 1;
                    d1[r2 + c1] += 1;
                    d2[r2 + k - c1] += 1;
                    cols.swap(r1, r2);
                }
            }
            steps += 1;
            if steps > budget {
                break; // restart with a fresh permutation
            }
        }
    }
}

/// Algorithm 1's `canPlace`: column and both diagonals free.
pub fn can_place(cols: &[usize], row: usize, col: usize) -> bool {
    cols.iter()
        .enumerate()
        .all(|(r, &c)| c != col && r.abs_diff(row) != c.abs_diff(col))
}

/// Verifies a complete placement is mutually non-attacking.
pub fn is_valid(cols: &[usize]) -> bool {
    (0..cols.len()).all(|r| can_place(&cols[..r], r, cols[r]))
}

/// S_PE placement as linear PE ids on a `k × k` array. For the radixes
/// without an N-Queen solution (2, 3) the fallback places one S_PE per row
/// on distinct columns (the anti-diagonal), which still guarantees
/// row/column disjointness — only the diagonal rule is relaxed.
pub fn s_pe_positions(k: usize) -> Vec<usize> {
    match solve(k) {
        Some(cols) => cols.iter().enumerate().map(|(r, &c)| r * k + c).collect(),
        None => (0..k).map(|r| r * k + (k - 1 - r)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_small_cases() {
        assert_eq!(solve(0), Some(vec![]));
        assert_eq!(solve(1), Some(vec![0]));
        assert_eq!(solve(2), None);
        assert_eq!(solve(3), None);
        assert!(solve(4).is_some());
    }

    #[test]
    fn solutions_valid_up_to_16() {
        for k in [1, 4, 5, 6, 7, 8, 12, 16] {
            let s = solve(k).unwrap_or_else(|| panic!("no solution for {k}"));
            assert_eq!(s.len(), k);
            assert!(is_valid(&s), "invalid solution for {k}: {s:?}");
        }
    }

    #[test]
    fn paper_radix_32_solves() {
        let s = solve(32).expect("32 × 32 must solve");
        assert!(is_valid(&s));
    }

    #[test]
    fn positions_row_column_disjoint_even_in_fallback() {
        for k in [2, 3, 4, 8] {
            let pos = s_pe_positions(k);
            assert_eq!(pos.len(), k);
            let rows: std::collections::HashSet<_> = pos.iter().map(|p| p / k).collect();
            let cols: std::collections::HashSet<_> = pos.iter().map(|p| p % k).collect();
            assert_eq!(rows.len(), k, "k={k}: one S_PE per row");
            assert_eq!(cols.len(), k, "k={k}: one S_PE per column");
        }
    }

    #[test]
    fn can_place_detects_attacks() {
        assert!(!can_place(&[0], 1, 0), "same column");
        assert!(!can_place(&[0], 1, 1), "diagonal");
        assert!(can_place(&[0], 1, 2));
    }

    proptest! {
        #[test]
        fn every_solution_is_nonattacking(k in 4usize..14) {
            let s = solve(k).unwrap();
            for i in 0..k {
                for j in (i + 1)..k {
                    prop_assert_ne!(s[i], s[j]);
                    prop_assert_ne!(j - i, s[i].abs_diff(s[j]));
                }
            }
        }
    }
}
