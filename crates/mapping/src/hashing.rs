//! The hashing-based mapping baseline (the policy Aurora is compared
//! against via CGRA-ME, §VI-A): vertices hash onto PEs by id, oblivious to
//! degree, with linear probing when a PE's buffer is full.

use crate::{MappingPolicy, VertexMapping};
use std::ops::Range;

/// Maps `range` onto a `k × k` array by `v mod k²`, spilling to the next
/// PE with free capacity. `degrees` is used only to report which vertices
/// *would* be high-degree (for apples-to-apples conflict metrics against
/// the degree-aware policy); it never influences placement.
pub fn map(range: Range<u32>, degrees: &[u32], k: usize, c_pe: usize) -> VertexMapping {
    let n = (range.end - range.start) as usize;
    assert_eq!(degrees.len(), n, "one degree per mapped vertex");
    assert!(k > 0 && c_pe > 0);
    let pes = k * k;
    assert!(
        n <= pes * c_pe,
        "subgraph of {n} vertices exceeds array capacity {}",
        pes * c_pe
    );

    let mut pe_of = vec![usize::MAX; n];
    let mut load = vec![0usize; pes];
    for (i, slot) in pe_of.iter_mut().enumerate() {
        let v = range.start as usize + i;
        let mut pe = v % pes;
        let mut probes = 0;
        while load[pe] >= c_pe {
            pe = (pe + 1) % pes;
            probes += 1;
            debug_assert!(probes <= pes, "capacity was checked, probe must end");
        }
        *slot = pe;
        load[pe] += 1;
    }

    // Same high-degree definition as Algorithm 1, for metric parity.
    let n_hn = ((k.saturating_sub(1)) * c_pe).min(n);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(degrees[i]), i));
    let high: Vec<u32> = order
        .into_iter()
        .take(n_hn)
        .filter(|&i| degrees[i] > 0)
        .map(|i| range.start + i as u32)
        .collect();

    VertexMapping {
        policy: MappingPolicy::Hashing,
        range,
        pe_of,
        k,
        s_pes: Vec::new(),
        high_degree: high,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_graph::generate;

    #[test]
    fn modulo_placement_without_pressure() {
        let degrees = vec![1u32; 8];
        let m = map(0..8, &degrees, 2, 4);
        for v in 0..8u32 {
            assert_eq!(m.pe_of(v), (v as usize) % 4);
        }
    }

    #[test]
    fn probing_respects_capacity() {
        let degrees = vec![1u32; 16];
        let m = map(0..16, &degrees, 2, 4);
        assert!(m.load_per_pe().iter().all(|&l| l <= 4));
        assert_eq!(m.load_per_pe().iter().sum::<usize>(), 16);
    }

    #[test]
    fn hashing_often_conflicts_on_skewed_graphs() {
        // many trials: hashing should show conflicts somewhere the
        // degree-aware policy shows none
        let mut any_conflict = false;
        for seed in 0..8 {
            let g = generate::rmat(64, 512, Default::default(), seed);
            let h = map(0..64, &g.degrees(), 4, 4);
            let d = crate::degree_aware::map(0..64, &g.degrees(), 4, 4);
            assert_eq!(d.high_degree_conflicts(), 0);
            if h.high_degree_conflicts() > 0 {
                any_conflict = true;
            }
        }
        assert!(any_conflict, "hashing never conflicted across 8 seeds?");
    }

    #[test]
    fn degree_never_influences_hash_placement() {
        let flat = vec![1u32; 12];
        let skew: Vec<u32> = (0..12).map(|i| if i == 5 { 100 } else { 1 }).collect();
        let a = map(0..12, &flat, 2, 4);
        let b = map(0..12, &skew, 2, 4);
        assert_eq!(a.pe_of, b.pe_of);
        assert_ne!(a.high_degree, b.high_degree);
    }
}
