//! The hashing-based mapping baseline (the policy Aurora is compared
//! against via CGRA-ME, §VI-A): vertices hash onto PEs by id, oblivious to
//! degree, with linear probing when a PE's buffer is full.

use crate::{MapScratch, MappingPolicy, VertexMapping};
use std::ops::Range;

/// Maps `range` onto a `k × k` array by `v mod k²`, spilling to the next
/// PE with free capacity. `degrees` is used only to report which vertices
/// *would* be high-degree (for apples-to-apples conflict metrics against
/// the degree-aware policy); it never influences placement.
pub fn map(range: Range<u32>, degrees: &[u32], k: usize, c_pe: usize) -> VertexMapping {
    let n = (range.end - range.start) as usize;
    let mut scratch = MapScratch::new();
    let mut pe_of = vec![0u32; n];
    let mut high = vec![0u32; crate::high_degree_cap(n, k, c_pe)];
    let n_high = map_into(
        range.clone(),
        degrees,
        k,
        c_pe,
        &mut scratch,
        &mut pe_of,
        &mut high,
    );
    high.truncate(n_high);
    VertexMapping {
        policy: MappingPolicy::Hashing,
        range,
        pe_of,
        k,
        s_pes: Vec::new(),
        high_degree: high,
    }
}

/// [`map`] emitting into caller-provided buffers; see
/// [`crate::degree_aware::map_into`] for the contract. Placement is
/// bit-identical to [`map`].
pub fn map_into(
    range: Range<u32>,
    degrees: &[u32],
    k: usize,
    c_pe: usize,
    scratch: &mut MapScratch,
    pe_of: &mut [u32],
    high_out: &mut [u32],
) -> usize {
    let n = (range.end - range.start) as usize;
    assert_eq!(degrees.len(), n, "one degree per mapped vertex");
    assert!(k > 0 && c_pe > 0);
    let pes = k * k;
    assert!(
        n <= pes * c_pe,
        "subgraph of {n} vertices exceeds array capacity {}",
        pes * c_pe
    );
    assert_eq!(pe_of.len(), n, "one placement slot per mapped vertex");
    assert!(
        high_out.len() >= crate::high_degree_cap(n, k, c_pe),
        "high-degree output under-sized"
    );

    scratch.load.clear();
    scratch.load.resize(pes, 0);
    for (i, slot) in pe_of.iter_mut().enumerate() {
        let v = range.start as usize + i;
        let mut pe = v % pes;
        let mut probes = 0;
        while scratch.load[pe] >= c_pe as u32 {
            pe = (pe + 1) % pes;
            probes += 1;
            debug_assert!(probes <= pes, "capacity was checked, probe must end");
        }
        *slot = pe as u32;
        scratch.load[pe] += 1;
    }

    // Same high-degree definition as Algorithm 1, for metric parity
    // (partial selection of the same totally-ordered prefix the legacy
    // full sort kept).
    let n_hn = ((k.saturating_sub(1)) * c_pe).min(n);
    let key = |i: u32| (std::cmp::Reverse(degrees[i as usize]), i);
    scratch.order.clear();
    scratch.order.extend(0..n as u32);
    if n_hn > 0 && n_hn < n {
        scratch
            .order
            .select_nth_unstable_by_key(n_hn - 1, |&i| key(i));
    }
    scratch.order[..n_hn].sort_unstable_by_key(|&i| key(i));
    let mut n_high = 0usize;
    for &i in scratch.order[..n_hn].iter() {
        if degrees[i as usize] > 0 {
            high_out[n_high] = range.start + i;
            n_high += 1;
        }
    }
    n_high
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_graph::generate;

    #[test]
    fn modulo_placement_without_pressure() {
        let degrees = vec![1u32; 8];
        let m = map(0..8, &degrees, 2, 4);
        for v in 0..8u32 {
            assert_eq!(m.pe_of(v), (v as usize) % 4);
        }
    }

    #[test]
    fn probing_respects_capacity() {
        let degrees = vec![1u32; 16];
        let m = map(0..16, &degrees, 2, 4);
        assert!(m.load_per_pe().iter().all(|&l| l <= 4));
        assert_eq!(m.load_per_pe().iter().sum::<usize>(), 16);
    }

    #[test]
    fn hashing_often_conflicts_on_skewed_graphs() {
        // many trials: hashing should show conflicts somewhere the
        // degree-aware policy shows none
        let mut any_conflict = false;
        for seed in 0..8 {
            let g = generate::rmat(64, 512, Default::default(), seed);
            let h = map(0..64, &g.degrees(), 4, 4);
            let d = crate::degree_aware::map(0..64, &g.degrees(), 4, 4);
            assert_eq!(d.high_degree_conflicts(), 0);
            if h.high_degree_conflicts() > 0 {
                any_conflict = true;
            }
        }
        assert!(any_conflict, "hashing never conflicted across 8 seeds?");
    }

    #[test]
    fn map_into_matches_map_with_reused_scratch() {
        let mut scratch = crate::MapScratch::new();
        for seed in 0..6 {
            let g = generate::rmat(48, 300, Default::default(), seed);
            let expect = map(0..48, &g.degrees(), 4, 4);
            let mut pe_of = vec![0u32; 48];
            let mut high = vec![0u32; crate::high_degree_cap(48, 4, 4)];
            let n_high = map_into(
                0..48,
                &g.degrees(),
                4,
                4,
                &mut scratch,
                &mut pe_of,
                &mut high,
            );
            assert_eq!(pe_of, expect.pe_of);
            assert_eq!(&high[..n_high], expect.high_degree.as_slice());
        }
    }

    #[test]
    fn degree_never_influences_hash_placement() {
        let flat = vec![1u32; 12];
        let skew: Vec<u32> = (0..12).map(|i| if i == 5 { 100 } else { 1 }).collect();
        let a = map(0..12, &flat, 2, 4);
        let b = map(0..12, &skew, 2, 4);
        assert_eq!(a.pe_of, b.pe_of);
        assert_ne!(a.high_degree, b.high_degree);
    }
}
