//! Degree-aware mapping — Algorithm 1 lines 13-25.

use crate::nqueen;
use crate::{MappingPolicy, VertexMapping};
use std::ops::Range;

/// Maps the vertex interval `range` (with per-vertex out-degrees `degrees`,
/// indexed by `v - range.start`) onto a `k × k` array where each PE buffers
/// at most `c_pe` vertices.
///
/// Algorithm 1:
/// 1. choose `S_PE`s on an N-Queen pattern (one per row, disjoint
///    columns/diagonals);
/// 2. identify the top `N_HN = (K − 1) · C_PE` vertices by degree as
///    high-degree;
/// 3. map high-degree vertices to the `S_PE`s round-robin (the paper's
///    "sequential hashing-based" assignment);
/// 4. fill low-degree vertices into the remaining PEs sequentially,
///    spilling into leftover `S_PE` capacity only at the end.
///
/// # Panics
/// Panics if the subgraph exceeds the array's total buffer capacity
/// (`k² · c_pe`) — tiles are sized by the same capacity, so a violation is
/// a tiling bug.
pub fn map(range: Range<u32>, degrees: &[u32], k: usize, c_pe: usize) -> VertexMapping {
    let n = (range.end - range.start) as usize;
    assert_eq!(degrees.len(), n, "one degree per mapped vertex");
    assert!(k > 0 && c_pe > 0);
    assert!(
        n <= k * k * c_pe,
        "subgraph of {n} vertices exceeds array capacity {}",
        k * k * c_pe
    );

    let s_pes = nqueen::s_pe_positions(k);
    let is_s_pe: Vec<bool> = {
        let mut v = vec![false; k * k];
        for &p in &s_pes {
            v[p] = true;
        }
        v
    };

    // High-degree identification: N_HN = (K − 1) × C_PE (§IV), but never
    // more than the S_PEs can buffer, and only vertices that actually have
    // neighbours qualify.
    let n_hn = ((k.saturating_sub(1)) * c_pe)
        .min(s_pes.len() * c_pe)
        .min(n);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(degrees[i]), i));
    let high: Vec<usize> = order
        .iter()
        .copied()
        .take(n_hn)
        .filter(|&i| degrees[i] > 0)
        .collect();

    let mut pe_of = vec![usize::MAX; n];
    let mut load = vec![0usize; k * k];

    // 3. round-robin the sorted high-degree vertices over the S_PEs.
    for (j, &i) in high.iter().enumerate() {
        let pe = s_pes[j % s_pes.len()];
        debug_assert!(load[pe] < c_pe, "round-robin cannot overfill S_PEs");
        pe_of[i] = pe;
        load[pe] += 1;
    }

    // 4. low-degree vertices fill non-S_PE PEs sequentially, then spill
    // into leftover S_PE capacity.
    let mut fill_order: Vec<usize> = (0..k * k).filter(|&p| !is_s_pe[p]).collect();
    fill_order.extend(s_pes.iter().copied());
    let mut cursor = 0usize;
    for slot in pe_of.iter_mut() {
        if *slot != usize::MAX {
            continue;
        }
        while load[fill_order[cursor]] >= c_pe {
            cursor += 1;
        }
        let pe = fill_order[cursor];
        *slot = pe;
        load[pe] += 1;
    }

    VertexMapping {
        policy: MappingPolicy::DegreeAware,
        high_degree: high.iter().map(|&i| range.start + i as u32).collect(),
        range,
        pe_of,
        k,
        s_pes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_graph::generate;
    use proptest::prelude::*;

    fn degrees_of(g: &aurora_graph::Csr) -> Vec<u32> {
        g.degrees()
    }

    #[test]
    fn star_centre_lands_on_an_s_pe() {
        let g = generate::star(16);
        let m = map(0..16, &degrees_of(&g), 4, 2);
        assert!(m.s_pes.contains(&m.pe_of(0)), "hub must sit on an S_PE");
        assert_eq!(m.high_degree[0], 0);
    }

    #[test]
    fn no_two_high_degree_share_row_or_column() {
        let g = generate::rmat(64, 512, Default::default(), 3);
        let m = map(0..64, &degrees_of(&g), 4, 4);
        assert_eq!(m.high_degree_conflicts(), 0);
    }

    #[test]
    fn capacity_respected() {
        let g = generate::rmat(60, 300, Default::default(), 1);
        let m = map(0..60, &degrees_of(&g), 4, 4);
        assert!(m.load_per_pe().iter().all(|&l| l <= 4));
        // every vertex mapped exactly once
        assert!(m.pe_of.iter().all(|&p| p < 16));
    }

    #[test]
    fn exact_fit_works() {
        let g = generate::ring(16);
        let m = map(0..16, &degrees_of(&g), 2, 4);
        assert!(m.load_per_pe().iter().all(|&l| l == 4));
    }

    #[test]
    #[should_panic(expected = "exceeds array capacity")]
    fn over_capacity_rejected() {
        let g = generate::ring(17);
        map(0..17, &g.degrees(), 2, 4);
    }

    #[test]
    fn zero_degree_vertices_never_high_degree() {
        // an empty graph: nothing qualifies as high-degree
        let degrees = vec![0u32; 8];
        let m = map(0..8, &degrees, 4, 2);
        assert!(m.high_degree.is_empty());
    }

    #[test]
    fn subrange_offsets_respected() {
        let g = generate::star(8);
        let m = map(100..108, &degrees_of(&g), 4, 2);
        assert_eq!(m.range, 100..108);
        let _ = m.pe_of(100);
        let _ = m.pe_of(107);
    }

    proptest! {
        #[test]
        fn mapping_is_total_and_capacity_safe(
            n in 1usize..120,
            k in 2usize..7,
            seed in 0u64..10,
        ) {
            let c_pe = n.div_ceil(k * k).max(1) + 1;
            let m_edges = n * 3;
            let g = generate::rmat(n, m_edges, Default::default(), seed);
            let m = map(0..n as u32, &g.degrees(), k, c_pe);
            prop_assert!(m.pe_of.iter().all(|&p| p < k * k));
            prop_assert!(m.load_per_pe().iter().all(|&l| l <= c_pe));
            prop_assert_eq!(m.high_degree_conflicts(), 0);
            // high-degree list is sorted by descending degree
            let degs: Vec<u32> = m.high_degree.iter().map(|&v| g.degree(v) as u32).collect();
            prop_assert!(degs.windows(2).all(|w| w[0] >= w[1]));
        }
    }
}
