//! Degree-aware mapping — Algorithm 1 lines 13-25.

use crate::{MapScratch, MappingPolicy, VertexMapping};
use std::ops::Range;

/// Maps the vertex interval `range` (with per-vertex out-degrees `degrees`,
/// indexed by `v - range.start`) onto a `k × k` array where each PE buffers
/// at most `c_pe` vertices.
///
/// Algorithm 1:
/// 1. choose `S_PE`s on an N-Queen pattern (one per row, disjoint
///    columns/diagonals);
/// 2. identify the top `N_HN = (K − 1) · C_PE` vertices by degree as
///    high-degree;
/// 3. map high-degree vertices to the `S_PE`s round-robin (the paper's
///    "sequential hashing-based" assignment);
/// 4. fill low-degree vertices into the remaining PEs sequentially,
///    spilling into leftover `S_PE` capacity only at the end.
///
/// # Panics
/// Panics if the subgraph exceeds the array's total buffer capacity
/// (`k² · c_pe`) — tiles are sized by the same capacity, so a violation is
/// a tiling bug.
pub fn map(range: Range<u32>, degrees: &[u32], k: usize, c_pe: usize) -> VertexMapping {
    let n = (range.end - range.start) as usize;
    let mut scratch = MapScratch::new();
    let mut pe_of = vec![0u32; n];
    let mut high = vec![0u32; crate::high_degree_cap(n, k, c_pe)];
    let n_high = map_into(
        range.clone(),
        degrees,
        k,
        c_pe,
        &mut scratch,
        &mut pe_of,
        &mut high,
    );
    high.truncate(n_high);
    VertexMapping {
        policy: MappingPolicy::DegreeAware,
        high_degree: high,
        range,
        pe_of,
        k,
        s_pes: scratch.s_pes,
    }
}

/// [`map`] emitting into caller-provided buffers: the placement lands in
/// `pe_of` (one slot per vertex in `range`) and the high-degree vertex
/// ids in `high_out` (sized by [`crate::high_degree_cap`]); the number
/// of high-degree entries written is returned. A warmed-up `scratch`
/// makes the whole kernel allocation-free, which is what lets the
/// engine's per-worker arenas map tile after tile with zero steady-state
/// heap traffic. Placement is bit-identical to [`map`].
///
/// # Panics
/// As [`map`]; additionally if `pe_of` is not exactly `n` slots or
/// `high_out` is smaller than [`crate::high_degree_cap`]`(n, k, c_pe)`.
pub fn map_into(
    range: Range<u32>,
    degrees: &[u32],
    k: usize,
    c_pe: usize,
    scratch: &mut MapScratch,
    pe_of: &mut [u32],
    high_out: &mut [u32],
) -> usize {
    let n = (range.end - range.start) as usize;
    assert_eq!(degrees.len(), n, "one degree per mapped vertex");
    assert!(k > 0 && c_pe > 0);
    assert!(
        n <= k * k * c_pe,
        "subgraph of {n} vertices exceeds array capacity {}",
        k * k * c_pe
    );
    assert_eq!(pe_of.len(), n, "one placement slot per mapped vertex");
    assert!(
        high_out.len() >= crate::high_degree_cap(n, k, c_pe),
        "high-degree output under-sized"
    );

    scratch.prepare_s_pes(k);

    // High-degree identification: N_HN = (K − 1) × C_PE (§IV), but never
    // more than the S_PEs can buffer, and only vertices that actually have
    // neighbours qualify.
    let n_hn = ((k.saturating_sub(1)) * c_pe)
        .min(scratch.s_pes.len() * c_pe)
        .min(n);
    // The legacy kernel fully sorted the candidate order by
    // (descending degree, ascending id) and kept the first `n_hn`; the
    // comparator is a total order, so partial selection of the same
    // prefix is bit-identical at O(n + n_hn log n_hn).
    let key = |i: u32| (std::cmp::Reverse(degrees[i as usize]), i);
    scratch.order.clear();
    scratch.order.extend(0..n as u32);
    if n_hn > 0 && n_hn < n {
        scratch
            .order
            .select_nth_unstable_by_key(n_hn - 1, |&i| key(i));
    }
    scratch.order[..n_hn].sort_unstable_by_key(|&i| key(i));
    let mut n_high = 0usize;
    for &i in scratch.order[..n_hn].iter() {
        if degrees[i as usize] > 0 {
            high_out[n_high] = i;
            n_high += 1;
        }
    }

    pe_of.fill(u32::MAX);
    scratch.load.clear();
    scratch.load.resize(k * k, 0);

    // 3. round-robin the sorted high-degree vertices over the S_PEs.
    for (j, slot) in high_out[..n_high].iter_mut().enumerate() {
        let i = *slot;
        let pe = scratch.s_pes[j % scratch.s_pes.len()];
        debug_assert!(
            scratch.load[pe] < c_pe as u32,
            "round-robin cannot overfill S_PEs"
        );
        pe_of[i as usize] = pe as u32;
        scratch.load[pe] += 1;
        // emit the global id; the local index was only needed for placement
        *slot = range.start + i;
    }

    // 4. low-degree vertices fill non-S_PE PEs sequentially, then spill
    // into leftover S_PE capacity.
    scratch.fill_order.clear();
    scratch
        .fill_order
        .extend((0..k * k).filter(|&p| !scratch.is_s_pe[p]));
    scratch.fill_order.extend(scratch.s_pes.iter().copied());
    let mut cursor = 0usize;
    for slot in pe_of.iter_mut() {
        if *slot != u32::MAX {
            continue;
        }
        while scratch.load[scratch.fill_order[cursor]] >= c_pe as u32 {
            cursor += 1;
        }
        let pe = scratch.fill_order[cursor];
        *slot = pe as u32;
        scratch.load[pe] += 1;
    }

    n_high
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_graph::generate;
    use proptest::prelude::*;

    fn degrees_of(g: &aurora_graph::Csr) -> Vec<u32> {
        g.degrees()
    }

    #[test]
    fn star_centre_lands_on_an_s_pe() {
        let g = generate::star(16);
        let m = map(0..16, &degrees_of(&g), 4, 2);
        assert!(m.s_pes.contains(&m.pe_of(0)), "hub must sit on an S_PE");
        assert_eq!(m.high_degree[0], 0);
    }

    #[test]
    fn no_two_high_degree_share_row_or_column() {
        let g = generate::rmat(64, 512, Default::default(), 3);
        let m = map(0..64, &degrees_of(&g), 4, 4);
        assert_eq!(m.high_degree_conflicts(), 0);
    }

    #[test]
    fn capacity_respected() {
        let g = generate::rmat(60, 300, Default::default(), 1);
        let m = map(0..60, &degrees_of(&g), 4, 4);
        assert!(m.load_per_pe().iter().all(|&l| l <= 4));
        // every vertex mapped exactly once
        assert!(m.pe_of.iter().all(|&p| p < 16));
    }

    #[test]
    fn exact_fit_works() {
        let g = generate::ring(16);
        let m = map(0..16, &degrees_of(&g), 2, 4);
        assert!(m.load_per_pe().iter().all(|&l| l == 4));
    }

    #[test]
    #[should_panic(expected = "exceeds array capacity")]
    fn over_capacity_rejected() {
        let g = generate::ring(17);
        map(0..17, &g.degrees(), 2, 4);
    }

    #[test]
    fn zero_degree_vertices_never_high_degree() {
        // an empty graph: nothing qualifies as high-degree
        let degrees = vec![0u32; 8];
        let m = map(0..8, &degrees, 4, 2);
        assert!(m.high_degree.is_empty());
    }

    #[test]
    fn subrange_offsets_respected() {
        let g = generate::star(8);
        let m = map(100..108, &degrees_of(&g), 4, 2);
        assert_eq!(m.range, 100..108);
        let _ = m.pe_of(100);
        let _ = m.pe_of(107);
    }

    proptest! {
        #[test]
        fn map_into_matches_map_with_reused_scratch(
            n in 1usize..120,
            k in 2usize..7,
            seeds in proptest::collection::vec(0u64..10, 1..4),
        ) {
            // one scratch across several graphs: reuse must not leak
            // state between calls
            let mut scratch = crate::MapScratch::new();
            for seed in seeds {
                let c_pe = n.div_ceil(k * k).max(1) + 1;
                let g = generate::rmat(n, n * 3, Default::default(), seed);
                let expect = map(0..n as u32, &g.degrees(), k, c_pe);
                let mut pe_of = vec![0u32; n];
                let mut high = vec![0u32; crate::high_degree_cap(n, k, c_pe)];
                let n_high = map_into(
                    0..n as u32, &g.degrees(), k, c_pe,
                    &mut scratch, &mut pe_of, &mut high,
                );
                prop_assert_eq!(&pe_of, &expect.pe_of);
                prop_assert_eq!(&high[..n_high], expect.high_degree.as_slice());
                prop_assert_eq!(&scratch.s_pes, &expect.s_pes);
            }
        }

        #[test]
        fn mapping_is_total_and_capacity_safe(
            n in 1usize..120,
            k in 2usize..7,
            seed in 0u64..10,
        ) {
            let c_pe = n.div_ceil(k * k).max(1) + 1;
            let m_edges = n * 3;
            let g = generate::rmat(n, m_edges, Default::default(), seed);
            let m = map(0..n as u32, &g.degrees(), k, c_pe);
            prop_assert!(m.pe_of.iter().all(|&p| (p as usize) < k * k));
            prop_assert!(m.load_per_pe().iter().all(|&l| l <= c_pe));
            prop_assert_eq!(m.high_degree_conflicts(), 0);
            // high-degree list is sorted by descending degree
            let degs: Vec<u32> = m.high_degree.iter().map(|&v| g.degree(v) as u32).collect();
            prop_assert!(degs.windows(2).all(|w| w[0] >= w[1]));
        }
    }
}
