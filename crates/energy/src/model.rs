//! Per-event energy pricing (Horowitz-table methodology).

use serde::{Deserialize, Serialize};

/// Activity counts collected by the simulator for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityCounts {
    /// Double-precision multiplies.
    pub fp_mults: u64,
    /// Double-precision adds/compares.
    pub fp_adds: u64,
    /// 8-byte words read/written in PE bank buffers.
    pub local_sram_words: u64,
    /// 8-byte words read/written in global/staging SRAM.
    pub global_sram_words: u64,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: u64,
    /// Flit-hops traversed on the NoC.
    pub noc_flit_hops: u64,
    /// Datapath/NoC reconfiguration events.
    pub reconfigurations: u64,
    /// Total execution cycles (for static energy).
    pub cycles: u64,
}

impl ActivityCounts {
    /// Element-wise sum.
    pub fn add(&self, o: &ActivityCounts) -> ActivityCounts {
        ActivityCounts {
            fp_mults: self.fp_mults + o.fp_mults,
            fp_adds: self.fp_adds + o.fp_adds,
            local_sram_words: self.local_sram_words + o.local_sram_words,
            global_sram_words: self.global_sram_words + o.global_sram_words,
            dram_bytes: self.dram_bytes + o.dram_bytes,
            noc_flit_hops: self.noc_flit_hops + o.noc_flit_hops,
            reconfigurations: self.reconfigurations + o.reconfigurations,
            cycles: self.cycles.max(o.cycles),
        }
    }
}

/// Per-event energies in picojoules. Defaults follow Horowitz's 45 nm
/// table scaled ×0.9 to the paper's TSMC 40 nm node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// FP64 multiply.
    pub pj_fp_mult: f64,
    /// FP64 add.
    pub pj_fp_add: f64,
    /// 8-byte access to a PE-local bank buffer (~100 KB SRAM).
    pub pj_local_sram_word: f64,
    /// 8-byte access to a large global SRAM (MB-scale).
    pub pj_global_sram_word: f64,
    /// One byte of DRAM traffic.
    pub pj_dram_byte: f64,
    /// One flit traversing one router + link.
    pub pj_noc_flit_hop: f64,
    /// One whole-array reconfiguration event (reprogramming every PE
    /// datapath and NoC switch of the 32 × 32 fabric).
    pub pj_reconfig: f64,
    /// Static (leakage) power in watts for the whole accelerator.
    pub static_watts: f64,
    /// Clock frequency in MHz (for static energy).
    pub clock_mhz: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            pj_fp_mult: 9.0,           // 45 nm FP64 mult ≈ 10 pJ × 0.9
            pj_fp_add: 1.8,            // 45 nm FP64 add ≈ 2 pJ × 0.9
            pj_local_sram_word: 22.0,  // 100 KB SRAM, 8 B access
            pj_global_sram_word: 90.0, // MB-scale SRAM, 8 B access
            pj_dram_byte: 230.0,       // ≈1.8 nJ per 8 B DRAM access
            pj_noc_flit_hop: 45.0,     // router + link per 32 B flit
            pj_reconfig: 8.0e5,        // ~0.8 uJ: 1024 PE datapaths + NoC switches
            static_watts: 1.5,
            clock_mhz: 700.0,
        }
    }
}

/// Energy in joules, broken down by component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    pub compute: f64,
    pub local_sram: f64,
    pub global_sram: f64,
    pub dram: f64,
    pub noc: f64,
    pub reconfiguration: f64,
    pub static_leakage: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.compute
            + self.local_sram
            + self.global_sram
            + self.dram
            + self.noc
            + self.reconfiguration
            + self.static_leakage
    }

    /// Fraction contributed by reconfiguration (the paper reports < 3 %).
    pub fn reconfiguration_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.reconfiguration / t
        }
    }
}

impl EnergyModel {
    /// Prices an activity profile.
    pub fn evaluate(&self, a: &ActivityCounts) -> EnergyBreakdown {
        let pj = |x: f64| x * 1e-12;
        let seconds = a.cycles as f64 / (self.clock_mhz * 1e6);
        EnergyBreakdown {
            compute: pj(a.fp_mults as f64 * self.pj_fp_mult + a.fp_adds as f64 * self.pj_fp_add),
            local_sram: pj(a.local_sram_words as f64 * self.pj_local_sram_word),
            global_sram: pj(a.global_sram_words as f64 * self.pj_global_sram_word),
            dram: pj(a.dram_bytes as f64 * self.pj_dram_byte),
            noc: pj(a.noc_flit_hops as f64 * self.pj_noc_flit_hop),
            reconfiguration: pj(a.reconfigurations as f64 * self.pj_reconfig),
            static_leakage: self.static_watts * seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_activity_zero_energy() {
        let e = EnergyModel::default().evaluate(&ActivityCounts::default());
        assert_eq!(e.total(), 0.0);
        assert_eq!(e.reconfiguration_fraction(), 0.0);
    }

    #[test]
    fn dram_dominates_equal_word_counts() {
        // moving a word from DRAM costs far more than computing on it —
        // the imbalance the paper's DRAM-access reduction exploits
        let m = EnergyModel::default();
        let compute_only = m.evaluate(&ActivityCounts {
            fp_mults: 1_000,
            ..Default::default()
        });
        let dram_only = m.evaluate(&ActivityCounts {
            dram_bytes: 8_000,
            ..Default::default()
        });
        assert!(dram_only.total() > 10.0 * compute_only.total());
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = EnergyModel::default();
        let a = ActivityCounts {
            fp_mults: 100,
            fp_adds: 100,
            local_sram_words: 50,
            global_sram_words: 20,
            dram_bytes: 640,
            noc_flit_hops: 30,
            reconfigurations: 2,
            cycles: 1000,
        };
        let e = m.evaluate(&a);
        let sum = e.compute
            + e.local_sram
            + e.global_sram
            + e.dram
            + e.noc
            + e.reconfiguration
            + e.static_leakage;
        assert!((e.total() - sum).abs() < 1e-18);
        assert!(e.total() > 0.0);
    }

    #[test]
    fn reconfig_fraction_small_in_realistic_profile() {
        // a GCN-layer-like profile: reconfiguration energy must be < 3 %
        let m = EnergyModel::default();
        let a = ActivityCounts {
            fp_mults: 10_000_000,
            fp_adds: 10_000_000,
            local_sram_words: 20_000_000,
            dram_bytes: 50_000_000,
            noc_flit_hops: 5_000_000,
            reconfigurations: 200, // a few per subgraph
            cycles: 1_000_000,
            ..Default::default()
        };
        let e = m.evaluate(&a);
        assert!(
            e.reconfiguration_fraction() < 0.03,
            "reconfig fraction {}",
            e.reconfiguration_fraction()
        );
    }

    #[test]
    fn activity_addition() {
        let a = ActivityCounts {
            fp_mults: 1,
            cycles: 10,
            ..Default::default()
        };
        let b = ActivityCounts {
            fp_mults: 2,
            cycles: 7,
            ..Default::default()
        };
        let c = a.add(&b);
        assert_eq!(c.fp_mults, 3);
        assert_eq!(c.cycles, 10, "cycles take the max (parallel phases)");
    }
}
