//! Energy and area models — §VI-A (energy methodology) and §VI-F (area).
//!
//! The paper estimates energy by counting on/off-chip communication and
//! computation events and pricing them with Horowitz's energy table
//! \[37\], plus Synopsys synthesis for power/area of the RTL. We keep the
//! same methodology: activity counters from the simulator × per-event
//! energies seeded from the published table (45 nm, lightly scaled to the
//! paper's 40 nm node), and an area model seeded directly from the
//! component percentages §VI-F reports.

pub mod area;
pub mod model;

pub use area::{AreaBreakdown, AreaModel};
pub use model::{ActivityCounts, EnergyBreakdown, EnergyModel};
