//! Area model reproducing the §VI-F analysis.
//!
//! §VI-F (TSMC 40 nm, 32 × 32 = 1024 PEs):
//! * within a PE — MAC array 7.1 %, memory hierarchy (SMB, IDMB/ODMB)
//!   82.9 %, PE control + reconfigurable switches 3.7 % (the remaining
//!   6.3 % is the router interface and wiring);
//! * chip level — the PE array consumes 62.74 % of chip area, the
//!   controller 0.9 %, and the flexible-interconnect additions (flexible
//!   routers, reconfigurable links, switches, muxes) 5.2 %; the rest is
//!   shared SRAM, DRAM interface and miscellaneous logic.

use serde::{Deserialize, Serialize};

/// Chip-level area model. Absolute scale is set by `pe_area_mm2`; all
/// ratios reproduce the published breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// PEs on the die.
    pub num_pes: usize,
    /// Area of one PE in mm² (40 nm, 100 KB buffer dominates).
    pub pe_area_mm2: f64,
    /// Fraction of PE area taken by the MAC array (paper: 7.1 %).
    pub pe_mac_fraction: f64,
    /// Fraction of PE area taken by buffers (paper: 82.9 %).
    pub pe_memory_fraction: f64,
    /// Fraction for PE control + reconfigurable switches (paper: 3.7 %).
    pub pe_control_fraction: f64,
    /// PE-array share of total chip area (paper: 62.74 %).
    pub pe_array_chip_fraction: f64,
    /// Controller share of chip area (paper: 0.9 %).
    pub controller_chip_fraction: f64,
    /// Flexible-interconnect share of chip area (paper: 5.2 %).
    pub interconnect_chip_fraction: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self {
            num_pes: 1024,
            pe_area_mm2: 0.055, // 100 KB SRAM-dominated PE at 40 nm
            pe_mac_fraction: 0.071,
            pe_memory_fraction: 0.829,
            pe_control_fraction: 0.037,
            pe_array_chip_fraction: 0.6274,
            controller_chip_fraction: 0.009,
            interconnect_chip_fraction: 0.052,
        }
    }
}

/// Absolute component areas in mm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    pub total_chip: f64,
    pub pe_array: f64,
    pub controller: f64,
    pub flexible_interconnect: f64,
    /// Shared SRAM, DRAM PHY, misc logic — the unaccounted remainder.
    pub other: f64,
    /// Inside one PE:
    pub pe_mac: f64,
    pub pe_memory: f64,
    pub pe_control: f64,
    pub pe_misc: f64,
}

impl AreaModel {
    /// Derives the absolute breakdown.
    pub fn breakdown(&self) -> AreaBreakdown {
        let pe_array = self.num_pes as f64 * self.pe_area_mm2;
        let total_chip = pe_array / self.pe_array_chip_fraction;
        let controller = total_chip * self.controller_chip_fraction;
        let flexible_interconnect = total_chip * self.interconnect_chip_fraction;
        let other = total_chip - pe_array - controller - flexible_interconnect;
        let pe_mac = self.pe_area_mm2 * self.pe_mac_fraction;
        let pe_memory = self.pe_area_mm2 * self.pe_memory_fraction;
        let pe_control = self.pe_area_mm2 * self.pe_control_fraction;
        let pe_misc = self.pe_area_mm2 - pe_mac - pe_memory - pe_control;
        AreaBreakdown {
            total_chip,
            pe_array,
            controller,
            flexible_interconnect,
            other,
            pe_mac,
            pe_memory,
            pe_control,
            pe_misc,
        }
    }
}

impl AreaBreakdown {
    /// The flexible-interconnect overhead as a fraction of chip area — the
    /// paper's "negligible area overhead" claim (5.2 %).
    pub fn interconnect_overhead(&self) -> f64 {
        self.flexible_interconnect / self.total_chip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_reproduce_paper() {
        let b = AreaModel::default().breakdown();
        assert!((b.pe_array / b.total_chip - 0.6274).abs() < 1e-9);
        assert!((b.controller / b.total_chip - 0.009).abs() < 1e-9);
        assert!((b.interconnect_overhead() - 0.052).abs() < 1e-9);
        assert!(
            (b.pe_mac / (b.pe_mac + b.pe_memory + b.pe_control + b.pe_misc) - 0.071).abs() < 1e-9
        );
    }

    #[test]
    fn components_sum_to_total() {
        let b = AreaModel::default().breakdown();
        let sum = b.pe_array + b.controller + b.flexible_interconnect + b.other;
        assert!((sum - b.total_chip).abs() < 1e-9);
        assert!(b.other > 0.0, "remainder must be positive");
    }

    #[test]
    fn memory_dominates_pe() {
        let b = AreaModel::default().breakdown();
        assert!(b.pe_memory > 10.0 * b.pe_mac);
        assert!(b.pe_misc >= 0.0);
    }

    #[test]
    fn scale_with_pe_count() {
        let small = AreaModel {
            num_pes: 256,
            ..Default::default()
        }
        .breakdown();
        let big = AreaModel::default().breakdown();
        assert!((big.total_chip / small.total_chip - 4.0).abs() < 1e-9);
    }
}
