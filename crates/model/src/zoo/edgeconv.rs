//! EdgeConv (Wang et al., Dynamic Graph CNN).
//!
//! Table II: the edge update is an MLP over edge features (`M × V`, with
//! activations for the 5-layer variant) and the vertex update is Null — the
//! aggregated edge features *are* the layer output:
//!
//! ```text
//! e_uv = MLP(x_u − x_v)        (1 or 5 width-preserving layers)
//! x'_v = Σ_{u ∈ N(v)} e_uv
//! ```

use crate::linalg;
use crate::reference::{init_weights, GnnLayer};
use crate::spec::ModelId;
use aurora_graph::{Csr, FeatureMatrix};

/// An EdgeConv layer with a configurable edge-MLP depth (1 or 5 in the
/// paper's zoo).
#[derive(Debug, Clone)]
pub struct EdgeConv {
    f: usize,
    /// One `f × f` weight per MLP layer.
    layers: Vec<Vec<f64>>,
}

impl EdgeConv {
    /// Builds from explicit width-preserving layer weights.
    pub fn new(f: usize, layers: Vec<Vec<f64>>) -> Self {
        assert!(!layers.is_empty(), "need at least one MLP layer");
        for (i, w) in layers.iter().enumerate() {
            assert_eq!(w.len(), f * f, "layer {i} weight shape mismatch");
        }
        Self { f, layers }
    }

    /// Deterministic random initialisation with `depth` layers.
    pub fn new_random(f: usize, depth: usize, seed: u64) -> Self {
        let layers = (0..depth)
            .map(|i| init_weights(f, f, seed.wrapping_add(i as u64 * 0x9e37)))
            .collect();
        Self::new(f, layers)
    }

    /// MLP depth.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    fn run_mlp(&self, mut h: Vec<f64>) -> Vec<f64> {
        let last = self.layers.len() - 1;
        for (i, w) in self.layers.iter().enumerate() {
            h = linalg::matvec(w, self.f, self.f, &h);
            // EdgeConv-5 interleaves ReLU (Table II lists α); the 1-layer
            // variant is a bare M×V.
            if self.layers.len() > 1 && i < last {
                linalg::relu_inplace(&mut h);
            }
        }
        h
    }
}

impl GnnLayer for EdgeConv {
    fn model_id(&self) -> ModelId {
        if self.layers.len() == 1 {
            ModelId::EdgeConv1
        } else {
            ModelId::EdgeConv5
        }
    }

    fn output_dim(&self) -> usize {
        self.f
    }

    fn forward(&self, g: &Csr, x: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(x.cols(), self.f, "input width mismatch");
        let n = g.num_vertices();
        let mut out = FeatureMatrix::zeros(n, self.f);
        for v in 0..n as u32 {
            let xv = x.row(v as usize);
            let acc = out.row_mut(v as usize);
            for &u in g.neighbors(v) {
                let diff: Vec<f64> = x
                    .row(u as usize)
                    .iter()
                    .zip(xv)
                    .map(|(a, b)| a - b)
                    .collect();
                let e = self.run_mlp(diff);
                linalg::add_assign(acc, &e);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_layer_identity_sums_differences() {
        // identity MLP: x'_v = Σ (x_u − x_v)
        let mut b = aurora_graph::GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(0, 2);
        let g = b.build();
        let x = FeatureMatrix::from_vec(3, 1, vec![1.0, 4.0, 7.0]);
        let net = EdgeConv::new(1, vec![vec![1.0]]);
        let y = net.forward(&g, &x);
        assert_eq!(y.get(0, 0), (4.0 - 1.0) + (7.0 - 1.0));
        assert_eq!(y.get(1, 0), 0.0);
    }

    #[test]
    fn model_id_depends_on_depth() {
        assert_eq!(EdgeConv::new_random(4, 1, 0).model_id(), ModelId::EdgeConv1);
        assert_eq!(EdgeConv::new_random(4, 5, 0).model_id(), ModelId::EdgeConv5);
        assert_eq!(EdgeConv::new_random(4, 5, 0).depth(), 5);
    }

    #[test]
    fn translation_invariance_of_single_layer() {
        // e depends only on x_u − x_v, so shifting all features leaves the
        // output unchanged.
        let g = aurora_graph::generate::ring(6);
        let x = FeatureMatrix::random(6, 3, 1.0, 2);
        let shifted =
            FeatureMatrix::from_vec(6, 3, x.as_slice().iter().map(|v| v + 10.0).collect());
        let net = EdgeConv::new_random(3, 1, 3);
        let y1 = net.forward(&g, &x);
        let y2 = net.forward(&g, &shifted);
        assert!(y1.max_abs_diff(&y2) < 1e-9);
    }

    #[test]
    fn five_layer_differs_from_one_layer() {
        let g = aurora_graph::generate::ring(6);
        let x = FeatureMatrix::random(6, 3, 1.0, 2);
        let y1 = EdgeConv::new_random(3, 1, 3).forward(&g, &x);
        let y5 = EdgeConv::new_random(3, 5, 3).forward(&g, &x);
        assert!(y1.max_abs_diff(&y5) > 1e-9);
    }
}
