//! GraphSAGE variants (Hamilton et al.).
//!
//! * [`SageMean`] — mean aggregation, linear vertex update (Table II:
//!   no edge update, `M × V` vertex update).
//! * [`SagePool`] — Eq. 5: per-neighbour pooling MLP, element-wise max
//!   aggregation, concat with the self feature, then the output layer:
//!
//! ```text
//! m_v = Concat(max_{u ∈ N(v)} σ(W_pl · x_u + b), x_v)
//! x'_v = ReLU(W · m_v + b')
//! ```

use crate::linalg;
use crate::reference::{init_weights, GnnLayer};
use crate::spec::ModelId;
use aurora_graph::{Csr, FeatureMatrix};

/// GraphSAGE with mean aggregation.
#[derive(Debug, Clone)]
pub struct SageMean {
    f_in: usize,
    f_out: usize,
    /// `f_out × f_in` row-major.
    weight: Vec<f64>,
}

impl SageMean {
    pub fn new(f_in: usize, f_out: usize, weight: Vec<f64>) -> Self {
        assert_eq!(weight.len(), f_in * f_out, "weight shape mismatch");
        Self {
            f_in,
            f_out,
            weight,
        }
    }

    pub fn new_random(f_in: usize, f_out: usize, seed: u64) -> Self {
        Self::new(f_in, f_out, init_weights(f_out, f_in, seed))
    }
}

impl GnnLayer for SageMean {
    fn model_id(&self) -> ModelId {
        ModelId::SageMean
    }

    fn output_dim(&self) -> usize {
        self.f_out
    }

    fn forward(&self, g: &Csr, x: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(x.cols(), self.f_in, "input width mismatch");
        let n = g.num_vertices();
        let mut out = FeatureMatrix::zeros(n, self.f_out);
        let mut m = vec![0.0; self.f_in];
        for v in 0..n as u32 {
            m.iter_mut().for_each(|e| *e = 0.0);
            let nbrs = g.neighbors(v);
            for &u in nbrs {
                linalg::add_assign(&mut m, x.row(u as usize));
            }
            if !nbrs.is_empty() {
                linalg::scale(&mut m, 1.0 / nbrs.len() as f64);
            }
            let y = linalg::matvec(&self.weight, self.f_out, self.f_in, &m);
            out.row_mut(v as usize).copy_from_slice(&y);
        }
        out
    }
}

/// GraphSAGE with max pooling (Eq. 5).
#[derive(Debug, Clone)]
pub struct SagePool {
    f_in: usize,
    f_out: usize,
    /// Pooling MLP weight `f_in × f_in`.
    w_pool: Vec<f64>,
    /// Pooling bias `f_in`.
    b_pool: Vec<f64>,
    /// Output weight `f_out × 2·f_in` (applied to the concat).
    weight: Vec<f64>,
    /// Output bias `f_out`.
    bias: Vec<f64>,
}

impl SagePool {
    pub fn new(
        f_in: usize,
        f_out: usize,
        w_pool: Vec<f64>,
        b_pool: Vec<f64>,
        weight: Vec<f64>,
        bias: Vec<f64>,
    ) -> Self {
        assert_eq!(w_pool.len(), f_in * f_in, "pool weight shape mismatch");
        assert_eq!(b_pool.len(), f_in, "pool bias shape mismatch");
        assert_eq!(
            weight.len(),
            2 * f_in * f_out,
            "output weight shape mismatch"
        );
        assert_eq!(bias.len(), f_out, "output bias shape mismatch");
        Self {
            f_in,
            f_out,
            w_pool,
            b_pool,
            weight,
            bias,
        }
    }

    pub fn new_random(f_in: usize, f_out: usize, seed: u64) -> Self {
        Self::new(
            f_in,
            f_out,
            init_weights(f_in, f_in, seed),
            init_weights(1, f_in, seed ^ 0x1),
            init_weights(f_out, 2 * f_in, seed ^ 0x2),
            init_weights(1, f_out, seed ^ 0x3),
        )
    }
}

impl GnnLayer for SagePool {
    fn model_id(&self) -> ModelId {
        ModelId::SagePool
    }

    fn output_dim(&self) -> usize {
        self.f_out
    }

    fn forward(&self, g: &Csr, x: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(x.cols(), self.f_in, "input width mismatch");
        let n = g.num_vertices();
        let mut out = FeatureMatrix::zeros(n, self.f_out);
        for v in 0..n as u32 {
            let nbrs = g.neighbors(v);
            // Element-wise max of σ(W_pl·x_u + b); empty → zero vector
            // (max over nothing contributes nothing).
            let mut pooled = vec![0.0; self.f_in];
            let mut first = true;
            for &u in nbrs {
                let mut h = linalg::matvec(&self.w_pool, self.f_in, self.f_in, x.row(u as usize));
                linalg::add_assign(&mut h, &self.b_pool);
                linalg::sigmoid_inplace(&mut h);
                if first {
                    pooled.copy_from_slice(&h);
                    first = false;
                } else {
                    linalg::max_assign(&mut pooled, &h);
                }
            }
            let m = linalg::concat(&pooled, x.row(v as usize));
            let mut y = linalg::matvec(&self.weight, self.f_out, 2 * self.f_in, &m);
            linalg::add_assign(&mut y, &self.bias);
            linalg::relu_inplace(&mut y);
            out.row_mut(v as usize).copy_from_slice(&y);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_divides_by_neighbour_count() {
        let mut b = aurora_graph::GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(0, 2);
        let g = b.build();
        let x = FeatureMatrix::from_vec(3, 1, vec![0.0, 4.0, 8.0]);
        let net = SageMean::new(1, 1, vec![1.0]);
        let y = net.forward(&g, &x);
        assert_eq!(y.get(0, 0), 6.0);
        assert_eq!(y.get(1, 0), 0.0, "no neighbours → zero mean");
    }

    #[test]
    fn pool_takes_elementwise_max() {
        // identity pool weights, zero pool bias: pooled = max σ(x_u)
        let mut b = aurora_graph::GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(0, 2);
        let g = b.build();
        let x = FeatureMatrix::from_vec(3, 1, vec![0.0, -2.0, 3.0]);
        // output weight [1, 0]: picks the pooled half of the concat.
        let net = SagePool::new(1, 1, vec![1.0], vec![0.0], vec![1.0, 0.0], vec![0.0]);
        let y = net.forward(&g, &x);
        let expect = 1.0 / (1.0 + (-3.0f64).exp()); // σ(3) > σ(-2)
        assert!((y.get(0, 0) - expect).abs() < 1e-12);
    }

    #[test]
    fn pool_concat_preserves_self_feature() {
        // output weight [0, 1]: picks the self half of the concat.
        let g = Csr::empty(1);
        let x = FeatureMatrix::from_vec(1, 1, vec![2.5]);
        let net = SagePool::new(1, 1, vec![1.0], vec![0.0], vec![0.0, 1.0], vec![0.0]);
        let y = net.forward(&g, &x);
        assert!((y.get(0, 0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn pool_output_is_relu_clipped() {
        let g = aurora_graph::generate::star(8);
        let x = FeatureMatrix::random(8, 4, 1.0, 1);
        let y = SagePool::new_random(4, 3, 2).forward(&g, &x);
        assert!(y.as_slice().iter().all(|&v| v >= 0.0));
    }
}
