//! The ten evaluated GNN models (Table II), each with a numeric reference
//! implementation of its layer equation — plus [`Gat`], a multi-head
//! graph-attention extension beyond the paper's zoo.

pub mod attention;
pub mod commnet;
pub mod edgeconv;
pub mod gat;
pub mod gcn;
pub mod ggcn;
pub mod gin;
pub mod sage;

pub use attention::{Agnn, VanillaAttention};
pub use commnet::CommNet;
pub use edgeconv::EdgeConv;
pub use gat::Gat;
pub use gcn::Gcn;
pub use ggcn::GGcn;
pub use gin::Gin;
pub use sage::{SageMean, SagePool};
