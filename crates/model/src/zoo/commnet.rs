//! CommNet (Sukhbaatar et al.) as characterised in Table II: plain-sum
//! aggregation followed by a linear vertex update.
//!
//! ```text
//! m_v = Σ_{u ∈ N(v)} x_u
//! x'_v = W · m_v
//! ```

use crate::linalg;
use crate::reference::{init_weights, GnnLayer};
use crate::spec::ModelId;
use aurora_graph::{Csr, FeatureMatrix};

/// A CommNet communication step.
#[derive(Debug, Clone)]
pub struct CommNet {
    f_in: usize,
    f_out: usize,
    /// `f_out × f_in` row-major.
    weight: Vec<f64>,
}

impl CommNet {
    pub fn new(f_in: usize, f_out: usize, weight: Vec<f64>) -> Self {
        assert_eq!(weight.len(), f_in * f_out, "weight shape mismatch");
        Self {
            f_in,
            f_out,
            weight,
        }
    }

    pub fn new_random(f_in: usize, f_out: usize, seed: u64) -> Self {
        Self::new(f_in, f_out, init_weights(f_out, f_in, seed))
    }
}

impl GnnLayer for CommNet {
    fn model_id(&self) -> ModelId {
        ModelId::CommNet
    }

    fn output_dim(&self) -> usize {
        self.f_out
    }

    fn forward(&self, g: &Csr, x: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(x.cols(), self.f_in, "input width mismatch");
        let n = g.num_vertices();
        let mut out = FeatureMatrix::zeros(n, self.f_out);
        let mut m = vec![0.0; self.f_in];
        for v in 0..n as u32 {
            m.iter_mut().for_each(|e| *e = 0.0);
            for &u in g.neighbors(v) {
                linalg::add_assign(&mut m, x.row(u as usize));
            }
            let y = linalg::matvec(&self.weight, self.f_out, self.f_in, &m);
            out.row_mut(v as usize).copy_from_slice(&y);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_neighbours_only() {
        // 0 -> 1; vertex 0 aggregates x_1, vertex 1 aggregates nothing.
        let mut b = aurora_graph::GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        let x = FeatureMatrix::from_vec(2, 1, vec![5.0, 7.0]);
        let net = CommNet::new(1, 1, vec![2.0]);
        let y = net.forward(&g, &x);
        assert_eq!(y.get(0, 0), 14.0);
        assert_eq!(y.get(1, 0), 0.0, "no self contribution");
    }

    #[test]
    fn linearity_in_features() {
        let g = aurora_graph::generate::ring(6);
        let x = FeatureMatrix::random(6, 3, 1.0, 4);
        let x2 = FeatureMatrix::from_vec(6, 3, x.as_slice().iter().map(|v| v * 2.0).collect());
        let net = CommNet::new_random(3, 2, 8);
        let y1 = net.forward(&g, &x);
        let y2 = net.forward(&g, &x2);
        assert!(y1
            .as_slice()
            .iter()
            .zip(y2.as_slice())
            .all(|(a, b)| (2.0 * a - b).abs() < 1e-9));
    }
}
