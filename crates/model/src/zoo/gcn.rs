//! Graph Convolutional Network (Kipf & Welling), Eq. 1:
//!
//! ```text
//! m_v = Σ_{u ∈ N(v) ∪ v}  x_u / √(D_u · D_v)
//! x'_v = ReLU(W · m_v + b)
//! ```

use crate::linalg;
use crate::reference::{init_weights, GnnLayer};
use crate::spec::ModelId;
use aurora_graph::{Csr, FeatureMatrix};

/// A GCN layer with symmetric-normalised aggregation.
#[derive(Debug, Clone)]
pub struct Gcn {
    f_in: usize,
    f_out: usize,
    /// `f_out × f_in`, row-major.
    weight: Vec<f64>,
    /// `f_out` bias.
    bias: Vec<f64>,
}

impl Gcn {
    /// Builds from explicit weights.
    pub fn new(f_in: usize, f_out: usize, weight: Vec<f64>, bias: Vec<f64>) -> Self {
        assert_eq!(weight.len(), f_in * f_out, "weight shape mismatch");
        assert_eq!(bias.len(), f_out, "bias shape mismatch");
        Self {
            f_in,
            f_out,
            weight,
            bias,
        }
    }

    /// Deterministic random initialisation.
    pub fn new_random(f_in: usize, f_out: usize, seed: u64) -> Self {
        Self::new(
            f_in,
            f_out,
            init_weights(f_out, f_in, seed),
            init_weights(1, f_out, seed ^ 0xb1a5),
        )
    }
}

impl GnnLayer for Gcn {
    fn model_id(&self) -> ModelId {
        ModelId::Gcn
    }

    fn output_dim(&self) -> usize {
        self.f_out
    }

    fn forward(&self, g: &Csr, x: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(x.cols(), self.f_in, "input width mismatch");
        let n = g.num_vertices();
        assert_eq!(x.rows(), n, "feature rows must match vertex count");
        // Eq. 1 aggregates over N(v) ∪ v; D counts that self-loop.
        let deg: Vec<f64> = (0..n as u32).map(|v| g.degree(v) as f64 + 1.0).collect();
        let mut out = FeatureMatrix::zeros(n, self.f_out);
        let mut m = vec![0.0; self.f_in];
        for v in 0..n as u32 {
            m.iter_mut().for_each(|e| *e = 0.0);
            let dv = deg[v as usize];
            // self contribution
            let s = 1.0 / (dv * dv).sqrt();
            for (mi, xi) in m.iter_mut().zip(x.row(v as usize)) {
                *mi += xi * s;
            }
            for &u in g.neighbors(v) {
                let s = 1.0 / (deg[u as usize] * dv).sqrt();
                for (mi, xi) in m.iter_mut().zip(x.row(u as usize)) {
                    *mi += xi * s;
                }
            }
            let mut y = linalg::matvec(&self.weight, self.f_out, self.f_in, &m);
            linalg::add_assign(&mut y, &self.bias);
            linalg::relu_inplace(&mut y);
            out.row_mut(v as usize).copy_from_slice(&y);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_graph::generate;

    #[test]
    fn identity_weight_single_vertex() {
        // One isolated vertex: m = x/1, y = ReLU(I·m) = ReLU(x).
        let g = Csr::empty(1);
        let x = FeatureMatrix::from_vec(1, 2, vec![3.0, -4.0]);
        let gcn = Gcn::new(2, 2, vec![1.0, 0.0, 0.0, 1.0], vec![0.0, 0.0]);
        let y = gcn.forward(&g, &x);
        assert_eq!(y.row(0), &[3.0, 0.0]);
    }

    #[test]
    fn two_vertex_normalisation() {
        // 0 <-> 1, both degree 1 (+1 self = 2). m_0 = x_0/2 + x_1/2.
        let mut b = aurora_graph::GraphBuilder::new(2);
        b.add_undirected_edge(0, 1);
        let g = b.build();
        let x = FeatureMatrix::from_vec(2, 1, vec![2.0, 6.0]);
        let gcn = Gcn::new(1, 1, vec![1.0], vec![0.0]);
        let y = gcn.forward(&g, &x);
        assert!((y.get(0, 0) - 4.0).abs() < 1e-12);
        assert!((y.get(1, 0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bias_and_relu_applied() {
        let g = Csr::empty(1);
        let x = FeatureMatrix::from_vec(1, 1, vec![1.0]);
        let gcn = Gcn::new(1, 1, vec![1.0], vec![-5.0]);
        let y = gcn.forward(&g, &x);
        assert_eq!(y.get(0, 0), 0.0, "ReLU clips 1 - 5");
    }

    #[test]
    fn output_nonnegative_everywhere() {
        let g = generate::rmat(32, 128, Default::default(), 1);
        let x = FeatureMatrix::random(32, 8, 0.9, 2);
        let y = Gcn::new_random(8, 4, 3).forward(&g, &x);
        assert!(y.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn rejects_wrong_width() {
        let g = Csr::empty(1);
        let x = FeatureMatrix::zeros(1, 3);
        Gcn::new_random(2, 2, 0).forward(&g, &x);
    }
}
