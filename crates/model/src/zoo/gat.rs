//! Graph Attention Network (Veličković et al.) — an *extension* beyond the
//! paper's Table II zoo, exercising the same A-GNN op mix (per-edge
//! `V·V`-style coefficients + `Scalar×V` mixing) with multi-head attention:
//!
//! ```text
//! e_uv^h   = LeakyReLU(aₕ · [Wₕ x_v ‖ Wₕ x_u])
//! α_uv^h   = softmax_{u ∈ N(v)}(e_uv^h)
//! x'_v     = ‖_h Σ_u α_uv^h · Wₕ x_u
//! ```
//!
//! The output width is `heads × head_dim`.

use crate::linalg;
use crate::reference::{init_weights, GnnLayer};
use crate::spec::ModelId;
use aurora_graph::{Csr, FeatureMatrix};

/// A multi-head GAT layer.
#[derive(Debug, Clone)]
pub struct Gat {
    f_in: usize,
    head_dim: usize,
    heads: usize,
    /// Per head: `head_dim × f_in` projection.
    w: Vec<Vec<f64>>,
    /// Per head: attention vector of length `2 · head_dim`.
    a: Vec<Vec<f64>>,
}

impl Gat {
    /// Builds from explicit per-head weights.
    pub fn new(f_in: usize, head_dim: usize, w: Vec<Vec<f64>>, a: Vec<Vec<f64>>) -> Self {
        assert_eq!(w.len(), a.len(), "one attention vector per head");
        assert!(!w.is_empty(), "need at least one head");
        for (i, (wh, ah)) in w.iter().zip(&a).enumerate() {
            assert_eq!(wh.len(), head_dim * f_in, "head {i} projection shape");
            assert_eq!(ah.len(), 2 * head_dim, "head {i} attention shape");
        }
        Self {
            f_in,
            head_dim,
            heads: w.len(),
            w,
            a,
        }
    }

    /// Deterministic random initialisation with `heads` heads.
    pub fn new_random(f_in: usize, head_dim: usize, heads: usize, seed: u64) -> Self {
        let w = (0..heads)
            .map(|h| init_weights(head_dim, f_in, seed.wrapping_add(h as u64 * 0x95)))
            .collect();
        let a = (0..heads)
            .map(|h| init_weights(1, 2 * head_dim, seed.wrapping_add(0xA + h as u64 * 0x95)))
            .collect();
        Self::new(f_in, head_dim, w, a)
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }
}

fn leaky_relu(x: f64) -> f64 {
    if x >= 0.0 {
        x
    } else {
        0.2 * x
    }
}

impl GnnLayer for Gat {
    fn model_id(&self) -> ModelId {
        // GAT shares the A-GNN characterisation; for workload purposes it
        // is costed as the attention row of Table II.
        ModelId::Agnn
    }

    fn output_dim(&self) -> usize {
        self.heads * self.head_dim
    }

    fn forward(&self, g: &Csr, x: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(x.cols(), self.f_in, "input width mismatch");
        let n = g.num_vertices();
        let mut out = FeatureMatrix::zeros(n, self.output_dim());
        for h in 0..self.heads {
            let wh = &self.w[h];
            let ah = &self.a[h];
            // project every vertex once per head
            let proj: Vec<Vec<f64>> = (0..n)
                .map(|v| linalg::matvec(wh, self.head_dim, self.f_in, x.row(v)))
                .collect();
            let (a_dst, a_src) = ah.split_at(self.head_dim);
            for v in 0..n {
                let nbrs = g.neighbors(v as u32);
                if nbrs.is_empty() {
                    continue;
                }
                let self_term = linalg::dot(a_dst, &proj[v]);
                let mut scores: Vec<f64> = nbrs
                    .iter()
                    .map(|&u| leaky_relu(self_term + linalg::dot(a_src, &proj[u as usize])))
                    .collect();
                linalg::softmax_inplace(&mut scores);
                let base = h * self.head_dim;
                let row = out.row_mut(v);
                for (&u, &alpha) in nbrs.iter().zip(&scores) {
                    for (i, p) in proj[u as usize].iter().enumerate() {
                        row[base + i] += alpha * p;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_graph::{generate, GraphBuilder};

    #[test]
    fn output_width_is_heads_times_dim() {
        let g = generate::ring(6);
        let x = FeatureMatrix::random(6, 5, 1.0, 1);
        let gat = Gat::new_random(5, 4, 3, 2);
        let y = gat.forward(&g, &x);
        assert_eq!(y.cols(), 12);
        assert_eq!(gat.heads(), 3);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn attention_weights_are_convex() {
        // single neighbour → α = 1 → output is exactly the projected
        // neighbour feature
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        let x = FeatureMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let gat = Gat::new_random(2, 3, 1, 7);
        let y = gat.forward(&g, &x);
        let proj = linalg::matvec(&gat.w[0], 3, 2, x.row(1));
        for (a, b) in y.row(0).iter().zip(&proj) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn isolated_vertices_output_zero() {
        let g = Csr::empty(3);
        let x = FeatureMatrix::random(3, 4, 1.0, 5);
        let y = Gat::new_random(4, 2, 2, 1).forward(&g, &x);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn heads_differ() {
        let g = generate::star(8);
        let x = FeatureMatrix::random(8, 4, 1.0, 3);
        let gat = Gat::new_random(4, 3, 2, 9);
        let y = gat.forward(&g, &x);
        let h0: Vec<f64> = y.row(0)[..3].to_vec();
        let h1: Vec<f64> = y.row(0)[3..].to_vec();
        assert_ne!(h0, h1, "independent heads should disagree");
    }
}
