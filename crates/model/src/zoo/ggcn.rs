//! Gated Graph ConvNet (Bresson & Laurent), Eq. 4:
//!
//! ```text
//! m_v = Σ_{u ∈ N(v)} σ(W_u · x_u + W_v · x_v) ⊙ x_u
//! x'_v = ReLU(W · m_v)
//! ```

use crate::linalg;
use crate::reference::{init_weights, GnnLayer};
use crate::spec::ModelId;
use aurora_graph::{Csr, FeatureMatrix};

/// A G-GCN layer.
#[derive(Debug, Clone)]
pub struct GGcn {
    f_in: usize,
    f_out: usize,
    /// Gate weight applied to the neighbour feature, `f_in × f_in`.
    w_u: Vec<f64>,
    /// Gate weight applied to the centre feature, `f_in × f_in`.
    w_v: Vec<f64>,
    /// Output weight, `f_out × f_in`.
    weight: Vec<f64>,
}

impl GGcn {
    pub fn new(f_in: usize, f_out: usize, w_u: Vec<f64>, w_v: Vec<f64>, weight: Vec<f64>) -> Self {
        assert_eq!(w_u.len(), f_in * f_in, "W_u shape mismatch");
        assert_eq!(w_v.len(), f_in * f_in, "W_v shape mismatch");
        assert_eq!(weight.len(), f_in * f_out, "W shape mismatch");
        Self {
            f_in,
            f_out,
            w_u,
            w_v,
            weight,
        }
    }

    pub fn new_random(f_in: usize, f_out: usize, seed: u64) -> Self {
        Self::new(
            f_in,
            f_out,
            init_weights(f_in, f_in, seed),
            init_weights(f_in, f_in, seed ^ 0x77),
            init_weights(f_out, f_in, seed ^ 0x3333),
        )
    }
}

impl GnnLayer for GGcn {
    fn model_id(&self) -> ModelId {
        ModelId::GGcn
    }

    fn output_dim(&self) -> usize {
        self.f_out
    }

    fn forward(&self, g: &Csr, x: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(x.cols(), self.f_in, "input width mismatch");
        let n = g.num_vertices();
        let mut out = FeatureMatrix::zeros(n, self.f_out);
        let mut m = vec![0.0; self.f_in];
        for v in 0..n as u32 {
            m.iter_mut().for_each(|e| *e = 0.0);
            // W_v·x_v is shared across all of v's edges — the data-reuse
            // opportunity the reuse FIFO exploits.
            let gate_v = linalg::matvec(&self.w_v, self.f_in, self.f_in, x.row(v as usize));
            for &u in g.neighbors(v) {
                let xu = x.row(u as usize);
                let mut gate = linalg::matvec(&self.w_u, self.f_in, self.f_in, xu);
                linalg::add_assign(&mut gate, &gate_v);
                linalg::sigmoid_inplace(&mut gate);
                for ((mi, gi), xi) in m.iter_mut().zip(&gate).zip(xu) {
                    *mi += gi * xi;
                }
            }
            let mut y = linalg::matvec(&self.weight, self.f_out, self.f_in, &m);
            linalg::relu_inplace(&mut y);
            out.row_mut(v as usize).copy_from_slice(&y);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_gate_weights_give_half_gate() {
        // W_u = W_v = 0 → σ(0) = 0.5 gate → m = 0.5·Σ x_u.
        let mut b = aurora_graph::GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        let x = FeatureMatrix::from_vec(2, 1, vec![0.0, 8.0]);
        let net = GGcn::new(1, 1, vec![0.0], vec![0.0], vec![1.0]);
        let y = net.forward(&g, &x);
        assert!((y.get(0, 0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gates_bound_messages() {
        // With identity output weight, |m| ≤ Σ|x_u| because σ ∈ (0,1).
        let g = aurora_graph::generate::star(5);
        let x = FeatureMatrix::random(5, 3, 1.0, 4);
        let net = GGcn::new_random(3, 3, 5);
        let y = net.forward(&g, &x);
        assert!(y.as_slice().iter().all(|&v| v >= 0.0), "ReLU output");
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn isolated_vertex_outputs_zero() {
        let g = Csr::empty(1);
        let x = FeatureMatrix::from_vec(1, 2, vec![1.0, 2.0]);
        let net = GGcn::new_random(2, 2, 1);
        let y = net.forward(&g, &x);
        assert_eq!(y.row(0), &[0.0, 0.0]);
    }
}
