//! Graph Isomorphism Network (Xu et al.), Eq. 2:
//!
//! ```text
//! m_v = (1 + ε) · x_v + Σ_{u ∈ N(v)} x_u
//! x'_v = MLP(m_v)
//! ```
//!
//! Table II characterises GIN's vertex update as a single `M × V`, so the
//! MLP here is one linear layer.

use crate::linalg;
use crate::reference::{init_weights, GnnLayer};
use crate::spec::ModelId;
use aurora_graph::{Csr, FeatureMatrix};

/// A GIN layer.
#[derive(Debug, Clone)]
pub struct Gin {
    f_in: usize,
    f_out: usize,
    /// Learnable self-weight ε.
    epsilon: f64,
    /// `f_out × f_in` row-major MLP weight.
    weight: Vec<f64>,
}

impl Gin {
    pub fn new(f_in: usize, f_out: usize, epsilon: f64, weight: Vec<f64>) -> Self {
        assert_eq!(weight.len(), f_in * f_out, "weight shape mismatch");
        Self {
            f_in,
            f_out,
            epsilon,
            weight,
        }
    }

    pub fn new_random(f_in: usize, f_out: usize, seed: u64) -> Self {
        Self::new(f_in, f_out, 0.1, init_weights(f_out, f_in, seed))
    }
}

impl GnnLayer for Gin {
    fn model_id(&self) -> ModelId {
        ModelId::Gin
    }

    fn output_dim(&self) -> usize {
        self.f_out
    }

    fn forward(&self, g: &Csr, x: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(x.cols(), self.f_in, "input width mismatch");
        let n = g.num_vertices();
        let mut out = FeatureMatrix::zeros(n, self.f_out);
        let mut m = vec![0.0; self.f_in];
        for v in 0..n as u32 {
            let self_scale = 1.0 + self.epsilon;
            for (mi, xi) in m.iter_mut().zip(x.row(v as usize)) {
                *mi = self_scale * xi;
            }
            for &u in g.neighbors(v) {
                linalg::add_assign(&mut m, x.row(u as usize));
            }
            let y = linalg::matvec(&self.weight, self.f_out, self.f_in, &m);
            out.row_mut(v as usize).copy_from_slice(&y);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_scales_self_feature() {
        let g = Csr::empty(1);
        let x = FeatureMatrix::from_vec(1, 1, vec![2.0]);
        let gin = Gin::new(1, 1, 0.5, vec![1.0]);
        let y = gin.forward(&g, &x);
        assert!((y.get(0, 0) - 3.0).abs() < 1e-12, "(1+0.5)·2 = 3");
    }

    #[test]
    fn neighbours_summed_unnormalised() {
        // 0 -> 1, 0 -> 2; ε = 0, identity weight.
        let mut b = aurora_graph::GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(0, 2);
        let g = b.build();
        let x = FeatureMatrix::from_vec(3, 1, vec![1.0, 10.0, 100.0]);
        let gin = Gin::new(1, 1, 0.0, vec![1.0]);
        let y = gin.forward(&g, &x);
        assert_eq!(y.get(0, 0), 111.0);
        assert_eq!(y.get(1, 0), 10.0);
    }

    #[test]
    fn no_activation_preserves_sign() {
        // Table II: GIN vertex update is M×V only, no α.
        let g = Csr::empty(1);
        let x = FeatureMatrix::from_vec(1, 1, vec![-1.0]);
        let gin = Gin::new(1, 1, 0.0, vec![1.0]);
        assert_eq!(gin.forward(&g, &x).get(0, 0), -1.0);
    }
}
