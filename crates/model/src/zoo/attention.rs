//! Attention-based models (A-GNNs), Eq. 3:
//!
//! ```text
//! m_v = Σ_{u ∈ N(v)} ((x_v)ᵀ · x_u) · x_u
//! x'_v = SoftMax(W · m_v)
//! ```
//!
//! [`VanillaAttention`] uses the raw dot-product coefficient;
//! [`Agnn`] (Thekumparampil et al.) normalises coefficients with a softmax
//! over the neighbourhood before mixing — same Table II op mix
//! (`Scalar×V`, `V·V` edge update), different numeric behaviour.

use crate::linalg;
use crate::reference::{init_weights, GnnLayer};
use crate::spec::ModelId;
use aurora_graph::{Csr, FeatureMatrix};

/// Shared attention machinery.
#[derive(Debug, Clone)]
struct AttentionCore {
    f_in: usize,
    f_out: usize,
    /// `f_out × f_in` row-major.
    weight: Vec<f64>,
}

impl AttentionCore {
    fn new(f_in: usize, f_out: usize, weight: Vec<f64>) -> Self {
        assert_eq!(weight.len(), f_in * f_out, "weight shape mismatch");
        Self {
            f_in,
            f_out,
            weight,
        }
    }

    /// Computes m_v given per-neighbour coefficients, then SoftMax(W·m).
    fn forward(&self, g: &Csr, x: &FeatureMatrix, normalise: bool) -> FeatureMatrix {
        assert_eq!(x.cols(), self.f_in, "input width mismatch");
        let n = g.num_vertices();
        let mut out = FeatureMatrix::zeros(n, self.f_out);
        let mut m = vec![0.0; self.f_in];
        let mut coeffs: Vec<f64> = Vec::new();
        for v in 0..n as u32 {
            m.iter_mut().for_each(|e| *e = 0.0);
            let xv = x.row(v as usize);
            let nbrs = g.neighbors(v);
            coeffs.clear();
            coeffs.extend(nbrs.iter().map(|&u| linalg::dot(xv, x.row(u as usize))));
            if normalise {
                linalg::softmax_inplace(&mut coeffs);
            }
            for (&u, &c) in nbrs.iter().zip(&coeffs) {
                for (mi, xi) in m.iter_mut().zip(x.row(u as usize)) {
                    *mi += c * xi;
                }
            }
            let mut y = linalg::matvec(&self.weight, self.f_out, self.f_in, &m);
            linalg::softmax_inplace(&mut y);
            out.row_mut(v as usize).copy_from_slice(&y);
        }
        out
    }
}

/// Vanilla dot-product attention (Eq. 3 verbatim).
#[derive(Debug, Clone)]
pub struct VanillaAttention {
    core: AttentionCore,
}

impl VanillaAttention {
    pub fn new(f_in: usize, f_out: usize, weight: Vec<f64>) -> Self {
        Self {
            core: AttentionCore::new(f_in, f_out, weight),
        }
    }

    pub fn new_random(f_in: usize, f_out: usize, seed: u64) -> Self {
        Self::new(f_in, f_out, init_weights(f_out, f_in, seed))
    }
}

impl GnnLayer for VanillaAttention {
    fn model_id(&self) -> ModelId {
        ModelId::VanillaAttention
    }

    fn output_dim(&self) -> usize {
        self.core.f_out
    }

    fn forward(&self, g: &Csr, x: &FeatureMatrix) -> FeatureMatrix {
        self.core.forward(g, x, false)
    }
}

/// Attention-based GNN with softmax-normalised neighbourhood coefficients.
#[derive(Debug, Clone)]
pub struct Agnn {
    core: AttentionCore,
}

impl Agnn {
    pub fn new(f_in: usize, f_out: usize, weight: Vec<f64>) -> Self {
        Self {
            core: AttentionCore::new(f_in, f_out, weight),
        }
    }

    pub fn new_random(f_in: usize, f_out: usize, seed: u64) -> Self {
        Self::new(f_in, f_out, init_weights(f_out, f_in, seed))
    }
}

impl GnnLayer for Agnn {
    fn model_id(&self) -> ModelId {
        ModelId::Agnn
    }

    fn output_dim(&self) -> usize {
        self.core.f_out
    }

    fn forward(&self, g: &Csr, x: &FeatureMatrix) -> FeatureMatrix {
        self.core.forward(g, x, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_coefficient_is_dot_product() {
        // 0 -> 1 with x_0 = [1, 0], x_1 = [2, 0]: coeff = 2, m_0 = [4, 0].
        let mut b = aurora_graph::GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        let x = FeatureMatrix::from_vec(2, 2, vec![1.0, 0.0, 2.0, 0.0]);
        // identity weight, then softmax over 2 outputs
        let att = VanillaAttention::new(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let y = att.forward(&g, &x);
        // softmax([4, 0])
        let e = (4.0f64).exp();
        assert!((y.get(0, 0) - e / (e + 1.0)).abs() < 1e-12);
        assert!((y.get(0, 1) - 1.0 / (e + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn outputs_are_probability_rows() {
        let g = aurora_graph::generate::rmat(16, 60, Default::default(), 2);
        let x = FeatureMatrix::random(16, 5, 1.0, 3);
        for y in [
            VanillaAttention::new_random(5, 4, 6).forward(&g, &x),
            Agnn::new_random(5, 4, 6).forward(&g, &x),
        ] {
            for r in 0..y.rows() {
                let s: f64 = y.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "row {r} sums to {s}");
                assert!(y.row(r).iter().all(|&v| v >= 0.0));
            }
        }
    }

    #[test]
    fn agnn_normalisation_differs_from_vanilla() {
        let g = aurora_graph::generate::star(6);
        let x = FeatureMatrix::random(6, 4, 1.0, 9);
        let w = init_weights(3, 4, 1);
        let v = VanillaAttention::new(4, 3, w.clone()).forward(&g, &x);
        let a = Agnn::new(4, 3, w).forward(&g, &x);
        assert!(
            v.max_abs_diff(&a) > 1e-9,
            "models should disagree numerically"
        );
    }
}
