//! GNN model zoo and message-passing IR for the Aurora simulator.
//!
//! The paper abstracts every GNN layer into three phases (§II, Fig. 1):
//! **Edge Update** (ψ), **Aggregation** (⊕) and **Vertex Update** (φ), and
//! classifies models into C-GNNs, A-GNNs and MP-GNNs by the form of the
//! update function. Table II enumerates the primitive operations each phase
//! needs per model; those operation kinds are exactly what the
//! reconfigurable PE datapath must support (Fig. 6).
//!
//! This crate provides:
//!
//! * [`ops`] — the primitive operation kinds of Table II with FLOP costs;
//! * [`phase`] — phase specifications (which ops run in which phase);
//! * [`spec`] — [`spec::ModelSpec`], the static description of a model;
//! * [`zoo`] — the ten evaluated models (GCN, GraphSAGE-Mean, GIN, CommNet,
//!   Vanilla-Attention, AGNN, G-GCN, GraphSAGE-Pool, EdgeConv-1/-5);
//! * [`workload`] — op-count characterisation (`O_ue`, `O_a`, `O_uv`, …) of
//!   a (model, graph, layer) triple — the inputs of Algorithm 2;
//! * [`reference`] — a numeric executor for every model, the golden output
//!   the PE functional model is validated against;
//! * [`kernels`] — the PolyBench operators the paper uses as phase
//!   benchmarks (gramschmidt, mvt, gemver, gesummv);
//! * [`linalg`] — the small dense kernels shared by the above.

pub mod kernels;
pub mod linalg;
pub mod ops;
pub mod phase;
pub mod reference;
pub mod spec;
pub mod workload;
pub mod zoo;

pub use ops::{Activation, OpKind};
pub use phase::{Phase, PhaseSpec};
pub use reference::GnnLayer;
pub use spec::{ModelCategory, ModelId, ModelSpec};
pub use workload::{LayerShape, PhaseOpCounts, Workload};
