//! Workload characterisation: the op counts Algorithm 2 consumes.
//!
//! Given a model, a graph (`n` vertices, `m` edges) and a layer shape, this
//! module multiplies out Table II into `O_ue` (edge-update ops), `O_a`
//! (aggregation ops) and `O_uv` (vertex-update ops), plus `E_f` (edge
//! feature width) — exactly the inputs of the partition heuristic.

use crate::ops::OpKind;
use crate::phase::{Phase, PhaseSpec};
use crate::spec::{ModelId, ModelSpec};
use aurora_graph::Csr;
use serde::{Deserialize, Serialize};

/// Feature widths of one GNN layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerShape {
    /// Input feature width `F_in`.
    pub f_in: usize,
    /// Output feature width `F_out`.
    pub f_out: usize,
}

impl LayerShape {
    pub fn new(f_in: usize, f_out: usize) -> Self {
        assert!(f_in > 0 && f_out > 0, "feature widths must be positive");
        Self { f_in, f_out }
    }
}

/// A (model, graph, layer) triple to be characterised.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    pub model: ModelSpec,
    /// |V| of the (sub)graph.
    pub num_vertices: usize,
    /// |E| of the (sub)graph.
    pub num_edges: usize,
    pub shape: LayerShape,
}

impl Workload {
    /// Characterises `model` on the full graph `g`.
    pub fn of(model: ModelId, g: &Csr, shape: LayerShape) -> Self {
        Self {
            model: model.spec(),
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            shape,
        }
    }

    /// Characterises from raw sizes (used for subgraphs and baselines).
    pub fn from_sizes(model: ModelId, n: usize, m: usize, shape: LayerShape) -> Self {
        Self {
            model: model.spec(),
            num_vertices: n,
            num_edges: m,
            shape,
        }
    }

    /// Re-targets this workload at a subgraph's sizes in place, keeping
    /// the model-spec allocation. The result equals
    /// `Workload::from_sizes(self.model.id, n, m, self.shape)` — the
    /// engine's zero-alloc tile walk re-sizes one workload per layer
    /// instead of building one per tile.
    pub fn resize(&mut self, num_vertices: usize, num_edges: usize) {
        self.num_vertices = num_vertices;
        self.num_edges = num_edges;
    }

    /// Algorithm 2's `E_f`: the per-edge feature width.
    pub fn edge_feature_dim(&self) -> usize {
        self.model.edge_feature_dim(self.shape.f_in)
    }

    /// FLOPs of one instance of a phase's op sequence.
    ///
    /// The op list is walked in order with a running vector width: `Concat`
    /// doubles it (GraphSAGE-Pool concatenates the aggregate with the
    /// vertex's own feature before the weight multiply, Eq. 5), `MatVec`
    /// maps it to `mat_out`, everything else preserves it.
    fn sequence_flops(ops: &[OpKind], start_dim: usize, mat_out: usize) -> u64 {
        let mut dim = start_dim;
        let mut total = 0u64;
        for &op in ops {
            match op {
                OpKind::Concat => {
                    total += op.flops(dim, dim);
                    dim *= 2;
                }
                OpKind::MatVec => {
                    total += op.flops(dim, mat_out);
                    dim = mat_out;
                }
                OpKind::VecDot => {
                    // consumes two vectors, produces a scalar coefficient;
                    // the running width (the message) is unchanged.
                    total += op.flops(dim, 1);
                }
                _ => {
                    total += op.flops(dim, dim);
                }
            }
        }
        total
    }

    /// Total FLOPs of one phase across the whole (sub)graph.
    pub fn phase_ops(&self, phase: Phase) -> u64 {
        let spec: &PhaseSpec = self.model.phase(phase);
        let (edge_dim, mat_out) = match phase {
            // Edge MLPs are width-preserving (W_u, W_pl are F×F).
            Phase::EdgeUpdate => (self.shape.f_in, self.shape.f_in),
            // Aggregation reduces the per-edge message: width E_f when the
            // model produced edge features, else the raw vertex feature.
            Phase::Aggregation => {
                let d = if self.model.has_edge_update() {
                    self.edge_feature_dim()
                } else {
                    self.shape.f_in
                };
                (d, d)
            }
            // Vertex update maps F_in (possibly concatenated) to F_out.
            Phase::VertexUpdate => (self.shape.f_in, self.shape.f_out),
        };
        let per_edge = Self::sequence_flops(&spec.per_edge, edge_dim, mat_out);
        let per_vertex = Self::sequence_flops(&spec.per_vertex, edge_dim, mat_out);
        per_edge * self.num_edges as u64 + per_vertex * self.num_vertices as u64
    }

    /// Splits one phase's FLOPs into (multiplies, adds) for energy
    /// accounting: `M×V`/`V·V` are half multiply + half accumulate,
    /// `Scalar×V`/`V⊙V` are pure multiplies, the accumulate family and PPU
    /// work are adds.
    pub fn phase_mult_add(&self, phase: Phase) -> (u64, u64) {
        let spec = self.model.phase(phase);
        let total = self.phase_ops(phase);
        if total == 0 {
            return (0, 0);
        }
        // weight the split by each op kind's share of one op-sequence pass
        let (edge_dim, mat_out) = match phase {
            Phase::EdgeUpdate => (self.shape.f_in, self.shape.f_in),
            Phase::Aggregation => {
                let d = if self.model.has_edge_update() {
                    self.edge_feature_dim()
                } else {
                    self.shape.f_in
                };
                (d, d)
            }
            Phase::VertexUpdate => (self.shape.f_in, self.shape.f_out),
        };
        let mut mult_w = 0u64;
        let mut add_w = 0u64;
        for ops in [&spec.per_edge, &spec.per_vertex] {
            let mut dim = edge_dim;
            for &op in ops.iter() {
                let f = match op {
                    OpKind::Concat => {
                        let f = op.flops(dim, dim);
                        dim *= 2;
                        f
                    }
                    OpKind::MatVec => {
                        let f = op.flops(dim, mat_out);
                        dim = mat_out;
                        f
                    }
                    OpKind::VecDot => op.flops(dim, 1),
                    _ => op.flops(dim, dim),
                };
                match op {
                    OpKind::MatVec | OpKind::VecDot => {
                        mult_w += f / 2;
                        add_w += f - f / 2;
                    }
                    OpKind::ScalarVec | OpKind::VecHadamard => mult_w += f,
                    _ => add_w += f,
                }
            }
        }
        let w = mult_w + add_w;
        if w == 0 {
            return (0, total);
        }
        let mults = total * mult_w / w;
        (mults, total - mults)
    }

    /// The full characterisation.
    pub fn op_counts(&self) -> PhaseOpCounts {
        PhaseOpCounts {
            edge_update: self.phase_ops(Phase::EdgeUpdate),
            aggregation: self.phase_ops(Phase::Aggregation),
            vertex_update: self.phase_ops(Phase::VertexUpdate),
            edge_feature_dim: self.edge_feature_dim(),
            num_edges: self.num_edges,
            num_vertices: self.num_vertices,
        }
    }

    /// Bytes of input features at double precision.
    pub fn input_feature_bytes(&self) -> u64 {
        (self.num_vertices * self.shape.f_in * 8) as u64
    }

    /// Bytes of output features at double precision.
    pub fn output_feature_bytes(&self) -> u64 {
        let out_dim = if self.model.has_vertex_update() {
            self.shape.f_out
        } else {
            self.edge_feature_dim().max(self.shape.f_in)
        };
        (self.num_vertices * out_dim * 8) as u64
    }

    /// Bytes of the layer's weight matrices at double precision.
    pub fn weight_bytes(&self) -> u64 {
        let mut elems = 0usize;
        if self.model.has_vertex_update() {
            let concat = self
                .model
                .vertex_update
                .per_vertex
                .contains(&OpKind::Concat);
            let in_dim = if concat {
                2 * self.shape.f_in
            } else {
                self.shape.f_in
            };
            elems += in_dim * self.shape.f_out;
        }
        // Edge-update MLP weights are F_in × F_in per stacked layer.
        let edge_mats = self
            .model
            .edge_update
            .per_edge
            .iter()
            .filter(|o| **o == OpKind::MatVec)
            .count();
        elems += edge_mats * self.shape.f_in * self.shape.f_in;
        (elems * 8) as u64
    }
}

/// Algorithm 2's inputs, fully evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseOpCounts {
    /// `O_ue` — ops in the Edge Update phase.
    pub edge_update: u64,
    /// `O_a` — ops in the Aggregation phase (includes the `E_f × m`
    /// edge-aggregate term Algorithm 2 splits into `AComp3`).
    pub aggregation: u64,
    /// `O_uv` — ops in the Vertex Update phase.
    pub vertex_update: u64,
    /// `E_f` — per-edge feature width.
    pub edge_feature_dim: usize,
    /// `m` — edge count.
    pub num_edges: usize,
    /// `n` — vertex count.
    pub num_vertices: usize,
}

impl PhaseOpCounts {
    /// Total ops across all phases.
    pub fn total(&self) -> u64 {
        self.edge_update + self.aggregation + self.vertex_update
    }

    /// The `E_f × m` edge-aggregate term of Algorithm 2 (AComp3 numerator).
    pub fn edge_aggregate_ops(&self) -> u64 {
        (self.edge_feature_dim * self.num_edges) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_graph::generate;

    fn shape() -> LayerShape {
        LayerShape::new(16, 8)
    }

    #[test]
    fn gcn_counts() {
        let g = generate::ring(10); // n = 10, m = 10
        let w = Workload::of(ModelId::Gcn, &g, shape());
        let c = w.op_counts();
        // EU: Scalar×V per edge = 16 × 10.
        assert_eq!(c.edge_update, 160);
        // Agg: ΣV over E_f = 16 per edge.
        assert_eq!(c.aggregation, 160);
        // VU: M×V (2·16·8) + ReLU (8) per vertex.
        assert_eq!(c.vertex_update, (2 * 16 * 8 + 8) * 10);
        assert_eq!(c.edge_feature_dim, 16);
        assert_eq!(c.edge_aggregate_ops(), 160);
    }

    #[test]
    fn gin_has_no_edge_ops() {
        let g = generate::ring(10);
        let c = Workload::of(ModelId::Gin, &g, shape()).op_counts();
        assert_eq!(c.edge_update, 0);
        assert_eq!(c.edge_feature_dim, 0);
        assert_eq!(c.edge_aggregate_ops(), 0);
        assert!(c.aggregation > 0 && c.vertex_update > 0);
    }

    #[test]
    fn edgeconv_has_no_vertex_ops() {
        let g = generate::ring(10);
        let c1 = Workload::of(ModelId::EdgeConv1, &g, shape()).op_counts();
        assert_eq!(c1.vertex_update, 0);
        let c5 = Workload::of(ModelId::EdgeConv5, &g, shape()).op_counts();
        assert!(
            c5.edge_update > 4 * c1.edge_update,
            "five stacked edge MLPs cost ≈5× one"
        );
    }

    #[test]
    fn attention_edge_ops_include_dot() {
        let g = generate::ring(10);
        let c = Workload::of(ModelId::VanillaAttention, &g, shape()).op_counts();
        // per edge: V·V (2·16) + Scalar×V (16) = 48
        assert_eq!(c.edge_update, 48 * 10);
    }

    #[test]
    fn sage_pool_concat_doubles_matvec_input() {
        let g = generate::ring(10);
        let c = Workload::of(ModelId::SagePool, &g, shape()).op_counts();
        // VU per vertex: concat(0) + M×V with in=32, out=8 + ReLU(8)
        assert_eq!(c.vertex_update, (2 * 32 * 8 + 8) * 10);
    }

    #[test]
    fn ggcn_edge_update_is_heavy() {
        let g = generate::ring(10);
        let c = Workload::of(ModelId::GGcn, &g, shape()).op_counts();
        // per edge: M×V (2·16·16) + σ (3·16) + ⊙ (16)
        assert_eq!(c.edge_update, (2 * 16 * 16 + 48 + 16) * 10);
    }

    #[test]
    fn counts_scale_linearly_with_edges() {
        let small = Workload::from_sizes(ModelId::Gcn, 100, 1_000, shape()).op_counts();
        let big = Workload::from_sizes(ModelId::Gcn, 100, 2_000, shape()).op_counts();
        assert_eq!(big.edge_update, 2 * small.edge_update);
        assert_eq!(big.aggregation, 2 * small.aggregation);
        assert_eq!(big.vertex_update, small.vertex_update);
    }

    #[test]
    fn weight_bytes_account_for_concat_and_edge_mlps() {
        let gcn = Workload::from_sizes(ModelId::Gcn, 10, 10, shape());
        assert_eq!(gcn.weight_bytes(), (16 * 8 * 8) as u64);
        let pool = Workload::from_sizes(ModelId::SagePool, 10, 10, shape());
        assert_eq!(pool.weight_bytes(), ((32 * 8 + 16 * 16) * 8) as u64);
        let ec5 = Workload::from_sizes(ModelId::EdgeConv5, 10, 10, shape());
        assert_eq!(ec5.weight_bytes(), (5 * 16 * 16 * 8) as u64);
    }

    #[test]
    fn total_is_sum_of_phases() {
        let g = generate::rmat(64, 300, Default::default(), 2);
        for id in ModelId::ALL {
            let c = Workload::of(id, &g, shape()).op_counts();
            assert_eq!(c.total(), c.edge_update + c.aggregation + c.vertex_update);
        }
    }

    #[test]
    fn mult_add_split_properties() {
        let g = generate::rmat(64, 300, Default::default(), 2);
        for id in ModelId::ALL {
            let w = Workload::of(id, &g, shape());
            for p in [Phase::EdgeUpdate, Phase::Aggregation, Phase::VertexUpdate] {
                let (m, a) = w.phase_mult_add(p);
                assert_eq!(m + a, w.phase_ops(p), "{} {:?}", id.name(), p);
            }
        }
        // aggregation (ΣV) is pure adds
        let w = Workload::of(ModelId::Gcn, &g, shape());
        let (m, a) = w.phase_mult_add(Phase::Aggregation);
        assert_eq!(m, 0);
        assert!(a > 0);
        // GCN edge update (Scalar×V) is pure multiplies
        let (m, a) = w.phase_mult_add(Phase::EdgeUpdate);
        assert!(m > 0);
        assert_eq!(a, 0);
    }

    #[test]
    fn io_byte_helpers() {
        let w = Workload::from_sizes(ModelId::Gcn, 10, 10, shape());
        assert_eq!(w.input_feature_bytes(), 10 * 16 * 8);
        assert_eq!(w.output_feature_bytes(), 10 * 8 * 8);
        let ec = Workload::from_sizes(ModelId::EdgeConv1, 10, 10, shape());
        // no vertex update: output is the edge/message width (16)
        assert_eq!(ec.output_feature_bytes(), 10 * 16 * 8);
    }
}
