//! Static model descriptions — the rows of Table II.

use crate::ops::{Activation, OpKind};
use crate::phase::{Phase, PhaseSpec};
use serde::{Deserialize, Serialize};

/// The paper's three-way taxonomy (§II): the vertex-update coefficient is a
/// fixed scalar (C-GNN), a learned scalar (A-GNN) or a learned vector
/// (MP-GNN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelCategory {
    CGnn,
    AGnn,
    MpGnn,
}

impl ModelCategory {
    pub fn name(self) -> &'static str {
        match self {
            ModelCategory::CGnn => "C-GNN",
            ModelCategory::AGnn => "A-GNN",
            ModelCategory::MpGnn => "MP-GNN",
        }
    }
}

/// The ten evaluated models (rows of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelId {
    Gcn,
    SageMean,
    Gin,
    CommNet,
    VanillaAttention,
    Agnn,
    GGcn,
    SagePool,
    EdgeConv1,
    EdgeConv5,
}

impl ModelId {
    /// All models in Table II order.
    pub const ALL: [ModelId; 10] = [
        ModelId::Gcn,
        ModelId::SageMean,
        ModelId::Gin,
        ModelId::CommNet,
        ModelId::VanillaAttention,
        ModelId::Agnn,
        ModelId::GGcn,
        ModelId::SagePool,
        ModelId::EdgeConv1,
        ModelId::EdgeConv5,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Gcn => "GCN",
            ModelId::SageMean => "GraphSAGE-Mean",
            ModelId::Gin => "GIN",
            ModelId::CommNet => "CommNet",
            ModelId::VanillaAttention => "Vanilla-Attention",
            ModelId::Agnn => "Attention-based GNN",
            ModelId::GGcn => "G-GCN",
            ModelId::SagePool => "GraphSAGE-Pooling",
            ModelId::EdgeConv1 => "EdgeConv-1",
            ModelId::EdgeConv5 => "EdgeConv-5",
        }
    }

    /// The static specification (Table II row).
    pub fn spec(self) -> ModelSpec {
        use Activation::*;
        use OpKind::*;
        let (category, edge_update, vertex_update, edge_layers) = match self {
            // GCN: EU Scalar×V (1/√(DuDv) scaling); VU M×V, α.
            ModelId::Gcn => (
                ModelCategory::CGnn,
                PhaseSpec {
                    per_edge: vec![ScalarVec],
                    per_vertex: vec![],
                },
                PhaseSpec {
                    per_edge: vec![],
                    per_vertex: vec![MatVec, Act(ReLU)],
                },
                1,
            ),
            // GraphSAGE-Mean: EU Null; VU M×V.
            ModelId::SageMean => (
                ModelCategory::CGnn,
                PhaseSpec::null(),
                PhaseSpec {
                    per_edge: vec![],
                    per_vertex: vec![MatVec],
                },
                0,
            ),
            // GIN: EU Null; VU M×V (MLP).
            ModelId::Gin => (
                ModelCategory::CGnn,
                PhaseSpec::null(),
                PhaseSpec {
                    per_edge: vec![],
                    per_vertex: vec![MatVec],
                },
                0,
            ),
            // CommNet: EU Null; VU M×V.
            ModelId::CommNet => (
                ModelCategory::CGnn,
                PhaseSpec::null(),
                PhaseSpec {
                    per_edge: vec![],
                    per_vertex: vec![MatVec],
                },
                0,
            ),
            // Vanilla attention: EU Scalar×V + V·V; VU M×V, α(SoftMax).
            ModelId::VanillaAttention => (
                ModelCategory::AGnn,
                PhaseSpec {
                    per_edge: vec![VecDot, ScalarVec],
                    per_vertex: vec![],
                },
                PhaseSpec {
                    per_edge: vec![],
                    per_vertex: vec![MatVec, Act(Softmax)],
                },
                1,
            ),
            // Attention-based GNN: same op mix as vanilla attention.
            ModelId::Agnn => (
                ModelCategory::AGnn,
                PhaseSpec {
                    per_edge: vec![VecDot, ScalarVec],
                    per_vertex: vec![],
                },
                PhaseSpec {
                    per_edge: vec![],
                    per_vertex: vec![MatVec, Act(Softmax)],
                },
                1,
            ),
            // G-GCN: EU M×V, V⊙V, α(σ); VU M×V, α(ReLU). (Eq. 4)
            ModelId::GGcn => (
                ModelCategory::MpGnn,
                PhaseSpec {
                    per_edge: vec![MatVec, Act(Sigmoid), VecHadamard],
                    per_vertex: vec![],
                },
                PhaseSpec {
                    per_edge: vec![],
                    per_vertex: vec![MatVec, Act(ReLU)],
                },
                1,
            ),
            // GraphSAGE-Pool: EU M×V, α; VU M×V, V||V, α. (Eq. 5)
            ModelId::SagePool => (
                ModelCategory::MpGnn,
                PhaseSpec {
                    per_edge: vec![MatVec, Act(Sigmoid)],
                    per_vertex: vec![],
                },
                PhaseSpec {
                    per_edge: vec![],
                    per_vertex: vec![Concat, MatVec, Act(ReLU)],
                },
                1,
            ),
            // EdgeConv-1: EU M×V; VU Null.
            ModelId::EdgeConv1 => (
                ModelCategory::MpGnn,
                PhaseSpec {
                    per_edge: vec![MatVec],
                    per_vertex: vec![],
                },
                PhaseSpec::null(),
                1,
            ),
            // EdgeConv-5: EU (M×V, α) × 5 MLP layers; VU Null.
            ModelId::EdgeConv5 => (
                ModelCategory::MpGnn,
                PhaseSpec {
                    per_edge: vec![
                        MatVec,
                        Act(ReLU),
                        MatVec,
                        Act(ReLU),
                        MatVec,
                        Act(ReLU),
                        MatVec,
                        Act(ReLU),
                        MatVec,
                        Act(ReLU),
                    ],
                    per_vertex: vec![],
                },
                PhaseSpec::null(),
                5,
            ),
        };
        // Aggregation: Table II shows a single ΣV column spanning all rows.
        // GraphSAGE-Pool's ⊕ is element-wise max (Eq. 5) — identical cost,
        // different reduction operator; the reference executor honours max.
        let aggregation = PhaseSpec {
            per_edge: vec![if self == ModelId::SagePool {
                MaxVec
            } else {
                AccumVec
            }],
            per_vertex: vec![],
        };
        ModelSpec {
            id: self,
            category,
            edge_update,
            aggregation,
            vertex_update,
            edge_mlp_layers: edge_layers,
        }
    }
}

/// A complete static model description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    pub id: ModelId,
    pub category: ModelCategory,
    /// ψ — per-edge ops ("Null" row in Table II when empty).
    pub edge_update: PhaseSpec,
    /// ⊕ — the reduction.
    pub aggregation: PhaseSpec,
    /// φ — per-vertex neural update ("Null" for EdgeConv).
    pub vertex_update: PhaseSpec,
    /// Number of weight layers applied per edge (EdgeConv-5 stacks five).
    pub edge_mlp_layers: usize,
}

impl ModelSpec {
    /// Display name.
    pub fn name(&self) -> &'static str {
        self.id.name()
    }

    /// The phase spec for a given phase.
    pub fn phase(&self, p: Phase) -> &PhaseSpec {
        match p {
            Phase::EdgeUpdate => &self.edge_update,
            Phase::Aggregation => &self.aggregation,
            Phase::VertexUpdate => &self.vertex_update,
        }
    }

    /// Whether the model has a non-trivial edge-update phase (§V: "If edge
    /// updates are not necessary, GNN execution can be initiated with
    /// aggregation, and set AComp1 to 0").
    pub fn has_edge_update(&self) -> bool {
        !self.edge_update.is_null()
    }

    /// Whether the model has a vertex-update phase (§V: "only one
    /// accelerator will be formed if vertex updates are not required").
    pub fn has_vertex_update(&self) -> bool {
        !self.vertex_update.is_null()
    }

    /// Width of the per-edge feature the edge-update phase produces, given
    /// input feature width `f_in` (0 when there is no edge update). This is
    /// Algorithm 2's `E_f`.
    pub fn edge_feature_dim(&self, f_in: usize) -> usize {
        if self.has_edge_update() {
            f_in
        } else {
            0
        }
    }

    /// Whether the model requires message-passing edge embeddings —
    /// the Table I column prior accelerators lack.
    pub fn uses_edge_embeddings(&self) -> bool {
        self.edge_update
            .per_edge
            .iter()
            .any(|o| matches!(o, OpKind::MatVec | OpKind::VecHadamard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_covers_all_categories() {
        use std::collections::HashSet;
        let cats: HashSet<_> = ModelId::ALL.iter().map(|m| m.spec().category).collect();
        assert_eq!(cats.len(), 3, "C-GNN, A-GNN and MP-GNN all covered");
    }

    #[test]
    fn table2_null_phases() {
        assert!(!ModelId::SageMean.spec().has_edge_update());
        assert!(!ModelId::Gin.spec().has_edge_update());
        assert!(!ModelId::CommNet.spec().has_edge_update());
        assert!(!ModelId::EdgeConv1.spec().has_vertex_update());
        assert!(!ModelId::EdgeConv5.spec().has_vertex_update());
        assert!(ModelId::Gcn.spec().has_edge_update());
        assert!(ModelId::Gcn.spec().has_vertex_update());
    }

    #[test]
    fn table2_gcn_ops() {
        let s = ModelId::Gcn.spec();
        assert_eq!(s.edge_update.per_edge, vec![OpKind::ScalarVec]);
        assert_eq!(
            s.vertex_update.per_vertex,
            vec![OpKind::MatVec, OpKind::Act(Activation::ReLU)]
        );
        assert_eq!(s.aggregation.per_edge, vec![OpKind::AccumVec]);
    }

    #[test]
    fn table2_attention_ops() {
        for id in [ModelId::VanillaAttention, ModelId::Agnn] {
            let s = id.spec();
            assert!(s.edge_update.per_edge.contains(&OpKind::VecDot));
            assert!(s.edge_update.per_edge.contains(&OpKind::ScalarVec));
            assert!(s
                .vertex_update
                .per_vertex
                .contains(&OpKind::Act(Activation::Softmax)));
        }
    }

    #[test]
    fn table2_ggcn_ops() {
        let s = ModelId::GGcn.spec();
        assert!(s.edge_update.per_edge.contains(&OpKind::MatVec));
        assert!(s.edge_update.per_edge.contains(&OpKind::VecHadamard));
        assert!(s
            .edge_update
            .per_edge
            .contains(&OpKind::Act(Activation::Sigmoid)));
        assert!(s.uses_edge_embeddings());
    }

    #[test]
    fn table2_sage_pool_ops() {
        let s = ModelId::SagePool.spec();
        assert!(s.vertex_update.per_vertex.contains(&OpKind::Concat));
        assert_eq!(s.aggregation.per_edge, vec![OpKind::MaxVec]);
    }

    #[test]
    fn edgeconv5_stacks_five_layers() {
        let s = ModelId::EdgeConv5.spec();
        assert_eq!(s.edge_mlp_layers, 5);
        let matvecs = s
            .edge_update
            .per_edge
            .iter()
            .filter(|o| **o == OpKind::MatVec)
            .count();
        assert_eq!(matvecs, 5);
    }

    #[test]
    fn edge_feature_dim_follows_edge_update() {
        assert_eq!(ModelId::Gcn.spec().edge_feature_dim(64), 64);
        assert_eq!(ModelId::Gin.spec().edge_feature_dim(64), 0);
    }

    #[test]
    fn c_gnns_never_use_edge_embeddings() {
        for id in ModelId::ALL {
            let s = id.spec();
            if s.category == ModelCategory::CGnn {
                assert!(!s.uses_edge_embeddings(), "{}", s.name());
            }
        }
        assert!(ModelId::GGcn.spec().uses_edge_embeddings());
    }

    #[test]
    fn names_are_unique() {
        let mut set = std::collections::HashSet::new();
        for id in ModelId::ALL {
            assert!(set.insert(id.name()));
        }
    }
}
