//! Primitive GNN operations (Table II) and their costs.
//!
//! Table II's legend: *Scalar* denotes a scalar coefficient, *V* a vector,
//! *M* a matrix, `×` multiplication, `·` dot product, `⊙` element-wise
//! product, `Σ` accumulation, `α` an activation function and `||`
//! concatenation. Each [`OpKind`] corresponds to one PE datapath
//! configuration (Fig. 6).

use serde::{Deserialize, Serialize};

/// Non-linear activation functions appearing in the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    ReLU,
    Sigmoid,
    /// Row-wise softmax (A-GNN final activation, Eq. 3).
    Softmax,
}

impl Activation {
    /// Applies the activation to one element (softmax handled at the vector
    /// level by [`crate::linalg::softmax_inplace`]).
    pub fn apply_scalar(self, x: f64) -> f64 {
        match self {
            Activation::ReLU => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Softmax => x, // vector-level; identity element-wise
        }
    }

    /// FLOPs to activate a length-`dim` vector (costing exp ≈ 1 flop —
    /// the same convention the paper's op counting uses for PPU work).
    pub fn flops(self, dim: usize) -> u64 {
        match self {
            Activation::ReLU => dim as u64,
            Activation::Sigmoid => 3 * dim as u64,
            Activation::Softmax => 3 * dim as u64,
        }
    }
}

/// The primitive operation kinds of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// `Scalar × V` — scale a vector by a scalar coefficient.
    ScalarVec,
    /// `V · V` — dot product producing a scalar.
    VecDot,
    /// `V ⊙ V` — element-wise (Hadamard) product.
    VecHadamard,
    /// `V + V` — element-wise addition (the gemver-style accumulate step).
    VecAdd,
    /// `M × V` — dense matrix-vector product.
    MatVec,
    /// `Σ V` — pure accumulation of vectors (adders only, Fig. 6 (c)).
    AccumVec,
    /// `max(V, V)` — element-wise max (GraphSAGE-Pool aggregation).
    MaxVec,
    /// `α` — non-linear activation, executed in the PPU.
    Act(Activation),
    /// `V || V` — concatenation, executed in the PPU (no arithmetic).
    Concat,
}

impl OpKind {
    /// FLOPs for one instance of this op.
    ///
    /// * Vector ops take the vector length as `dim_in`.
    /// * `MatVec` multiplies a `dim_out × dim_in` matrix by a `dim_in`
    ///   vector: `2 · dim_in · dim_out` FLOPs (multiply + accumulate).
    pub fn flops(self, dim_in: usize, dim_out: usize) -> u64 {
        let n = dim_in as u64;
        match self {
            OpKind::ScalarVec => n,
            OpKind::VecDot => 2 * n,
            OpKind::VecHadamard => n,
            OpKind::VecAdd => n,
            OpKind::MatVec => 2 * n * dim_out as u64,
            OpKind::AccumVec => n,
            OpKind::MaxVec => n,
            OpKind::Act(a) => a.flops(dim_in),
            OpKind::Concat => 0,
        }
    }

    /// Whether the op needs the multiplier array (false → adders/PPU only).
    pub fn needs_multipliers(self) -> bool {
        matches!(
            self,
            OpKind::ScalarVec | OpKind::VecDot | OpKind::VecHadamard | OpKind::MatVec
        )
    }

    /// Whether the op is executed in the post-processing unit rather than
    /// the MAC array.
    pub fn is_ppu_op(self) -> bool {
        matches!(self, OpKind::Act(_) | OpKind::Concat | OpKind::MaxVec)
    }

    /// Table II notation for this op.
    pub fn notation(self) -> &'static str {
        match self {
            OpKind::ScalarVec => "Scalar×V",
            OpKind::VecDot => "V·V",
            OpKind::VecHadamard => "V⊙V",
            OpKind::VecAdd => "V+V",
            OpKind::MatVec => "M×V",
            OpKind::AccumVec => "ΣV",
            OpKind::MaxVec => "max(V)",
            OpKind::Act(Activation::ReLU) => "α(ReLU)",
            OpKind::Act(Activation::Sigmoid) => "α(σ)",
            OpKind::Act(Activation::Softmax) => "α(SoftMax)",
            OpKind::Concat => "V||V",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_costs() {
        assert_eq!(OpKind::ScalarVec.flops(8, 0), 8);
        assert_eq!(OpKind::VecDot.flops(8, 0), 16);
        assert_eq!(OpKind::VecHadamard.flops(8, 0), 8);
        assert_eq!(OpKind::MatVec.flops(4, 3), 24);
        assert_eq!(OpKind::AccumVec.flops(5, 0), 5);
        assert_eq!(OpKind::Concat.flops(100, 100), 0);
        assert_eq!(OpKind::Act(Activation::ReLU).flops(10, 0), 10);
        assert_eq!(OpKind::Act(Activation::Sigmoid).flops(10, 0), 30);
    }

    #[test]
    fn multiplier_requirements_match_fig6() {
        // Fig. 6 (a): V×V / M×V / V·V use paired multipliers + adders.
        assert!(OpKind::MatVec.needs_multipliers());
        assert!(OpKind::VecDot.needs_multipliers());
        // Fig. 6 (b): scalar / Hadamard use multipliers without accumulation.
        assert!(OpKind::ScalarVec.needs_multipliers());
        assert!(OpKind::VecHadamard.needs_multipliers());
        // Fig. 6 (c): ΣV bypasses multipliers.
        assert!(!OpKind::AccumVec.needs_multipliers());
        assert!(!OpKind::VecAdd.needs_multipliers());
    }

    #[test]
    fn ppu_ops() {
        assert!(OpKind::Act(Activation::ReLU).is_ppu_op());
        assert!(OpKind::Concat.is_ppu_op());
        assert!(OpKind::MaxVec.is_ppu_op());
        assert!(!OpKind::MatVec.is_ppu_op());
    }

    #[test]
    fn activation_scalar_semantics() {
        assert_eq!(Activation::ReLU.apply_scalar(-3.0), 0.0);
        assert_eq!(Activation::ReLU.apply_scalar(2.0), 2.0);
        let s = Activation::Sigmoid.apply_scalar(0.0);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn notation_strings_unique() {
        let all = [
            OpKind::ScalarVec,
            OpKind::VecDot,
            OpKind::VecHadamard,
            OpKind::VecAdd,
            OpKind::MatVec,
            OpKind::AccumVec,
            OpKind::MaxVec,
            OpKind::Act(Activation::ReLU),
            OpKind::Act(Activation::Sigmoid),
            OpKind::Act(Activation::Softmax),
            OpKind::Concat,
        ];
        let mut set = std::collections::HashSet::new();
        for op in all {
            assert!(set.insert(op.notation()), "duplicate {:?}", op.notation());
        }
    }
}
