//! PolyBench phase-benchmark kernels (§VI-A "Benchmark").
//!
//! The paper populates generic GNN execution phases with PolyBench
//! operators: *gramschmidt* (orthogonalising edge features), *mvt*
//! (weight-matrix × vertex-feature products), *gemver* (the vector-addition
//! aggregation step) and *gesummv* (the vector-vector edge-feature update),
//! plus ReLU. These implementations follow the PolyBench reference
//! semantics and expose exact FLOP counts so the op-counting simulator can
//! cost them.

use crate::linalg;

/// Modified Gram–Schmidt QR decomposition of a `rows × cols` row-major
/// matrix (`cols` vectors of length `rows` stored column-wise in PolyBench;
/// here columns are orthogonalised). Returns `(q, r)` where `q` is
/// `rows × cols` and `r` is `cols × cols`.
pub fn gramschmidt(a: &[f64], rows: usize, cols: usize) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), rows * cols, "shape mismatch");
    let mut q = a.to_vec();
    let mut r = vec![0.0; cols * cols];
    for k in 0..cols {
        let mut nrm = 0.0;
        for i in 0..rows {
            let v = q[i * cols + k];
            nrm += v * v;
        }
        let rkk = nrm.sqrt();
        r[k * cols + k] = rkk;
        if rkk > 0.0 {
            for i in 0..rows {
                q[i * cols + k] /= rkk;
            }
        }
        for j in (k + 1)..cols {
            let mut s = 0.0;
            for i in 0..rows {
                s += q[i * cols + k] * q[i * cols + j];
            }
            r[k * cols + j] = s;
            for i in 0..rows {
                q[i * cols + j] -= q[i * cols + k] * s;
            }
        }
    }
    (q, r)
}

/// FLOPs of [`gramschmidt`]: for each column k — 2·rows (norm) + rows
/// (scale) + per later column 4·rows (project + subtract).
pub fn gramschmidt_flops(rows: usize, cols: usize) -> u64 {
    let (rows, cols) = (rows as u64, cols as u64);
    let per_k = 3 * rows;
    let pairs = cols * (cols.saturating_sub(1)) / 2;
    cols * per_k + pairs * 4 * rows
}

/// PolyBench `mvt`: `x1 += A·y1; x2 += Aᵀ·y2` for an `n × n` matrix.
pub fn mvt(a: &[f64], n: usize, x1: &mut [f64], x2: &mut [f64], y1: &[f64], y2: &[f64]) {
    assert_eq!(a.len(), n * n);
    assert!(x1.len() == n && x2.len() == n && y1.len() == n && y2.len() == n);
    for i in 0..n {
        x1[i] += linalg::dot(&a[i * n..(i + 1) * n], y1);
    }
    for i in 0..n {
        let mut s = 0.0;
        for j in 0..n {
            s += a[j * n + i] * y2[j];
        }
        x2[i] += s;
    }
}

/// FLOPs of [`mvt`]: two n×n mat-vec products.
pub fn mvt_flops(n: usize) -> u64 {
    4 * (n as u64) * (n as u64)
}

/// PolyBench `gemver`:
/// `Â = A + u1·v1ᵀ + u2·v2ᵀ; x = β·Âᵀ·y + z; w = α·Â·x`.
/// Returns `(a_hat, x, w)`.
#[allow(clippy::too_many_arguments)]
pub fn gemver(
    alpha: f64,
    beta: f64,
    a: &[f64],
    n: usize,
    u1: &[f64],
    v1: &[f64],
    u2: &[f64],
    v2: &[f64],
    y: &[f64],
    z: &[f64],
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), n * n);
    let mut a_hat = a.to_vec();
    for i in 0..n {
        for j in 0..n {
            a_hat[i * n + j] += u1[i] * v1[j] + u2[i] * v2[j];
        }
    }
    let mut x = z.to_vec();
    for i in 0..n {
        let mut s = 0.0;
        for j in 0..n {
            s += a_hat[j * n + i] * y[j];
        }
        x[i] += beta * s;
    }
    let mut w = vec![0.0; n];
    for i in 0..n {
        w[i] = alpha * linalg::dot(&a_hat[i * n..(i + 1) * n], &x);
    }
    (a_hat, x, w)
}

/// FLOPs of [`gemver`].
pub fn gemver_flops(n: usize) -> u64 {
    let n = n as u64;
    4 * n * n /* rank-2 update */ + (2 * n * n + 2 * n) /* x */ + (2 * n * n + n)
    /* w */
}

/// PolyBench `gesummv`: `y = α·A·x + β·B·x`.
pub fn gesummv(alpha: f64, beta: f64, a: &[f64], b: &[f64], n: usize, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(x.len(), n);
    let mut y = vec![0.0; n];
    for i in 0..n {
        let t = linalg::dot(&a[i * n..(i + 1) * n], x);
        let s = linalg::dot(&b[i * n..(i + 1) * n], x);
        y[i] = alpha * t + beta * s;
    }
    y
}

/// FLOPs of [`gesummv`].
pub fn gesummv_flops(n: usize) -> u64 {
    let n = n as u64;
    4 * n * n + 3 * n
}

/// The simplified per-phase roles the paper assigns (§VI-A): gemver's role
/// in the aggregation phase is plain vector accumulation.
pub fn vec_add_flops(dim: usize) -> u64 {
    dim as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gramschmidt_orthogonalises() {
        // 3×2 matrix with independent columns.
        let a = vec![1.0, 1.0, 0.0, 1.0, 1.0, 0.0];
        let (q, r) = gramschmidt(&a, 3, 2);
        // Columns of Q orthonormal.
        let col = |m: &[f64], j: usize| -> Vec<f64> { (0..3).map(|i| m[i * 2 + j]).collect() };
        let q0 = col(&q, 0);
        let q1 = col(&q, 1);
        assert!((linalg::dot(&q0, &q0) - 1.0).abs() < 1e-12);
        assert!((linalg::dot(&q1, &q1) - 1.0).abs() < 1e-12);
        assert!(linalg::dot(&q0, &q1).abs() < 1e-12);
        // R upper triangular: the below-diagonal entry stays zero.
        assert!(r[2].abs() < 1e-12);
        // A = Q·R reconstructs.
        for i in 0..3 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..2 {
                    s += q[i * 2 + k] * r[k * 2 + j];
                }
                assert!((s - a[i * 2 + j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gramschmidt_handles_zero_column() {
        let a = vec![0.0; 4]; // 2×2 zero matrix
        let (q, r) = gramschmidt(&a, 2, 2);
        assert!(q.iter().all(|x| x.is_finite()));
        assert!(r.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn mvt_matches_manual() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let mut x1 = vec![1.0, 1.0];
        let mut x2 = vec![0.0, 0.0];
        mvt(&a, 2, &mut x1, &mut x2, &[1.0, 0.0], &[0.0, 1.0]);
        assert_eq!(x1, vec![2.0, 4.0]); // [1,1] + A·[1,0] = [1+1, 1+3]
        assert_eq!(x2, vec![3.0, 4.0]); // Aᵀ·[0,1] = row 1 of A
    }

    #[test]
    fn gemver_trivial_identity() {
        // α=1, β=0, rank-2 vectors zero → w = A·z
        let n = 2;
        let a = vec![2.0, 0.0, 0.0, 2.0];
        let zeros = vec![0.0; n];
        let z = vec![1.0, 3.0];
        let (a_hat, x, w) = gemver(1.0, 0.0, &a, n, &zeros, &zeros, &zeros, &zeros, &zeros, &z);
        assert_eq!(a_hat, a);
        assert_eq!(x, z);
        assert_eq!(w, vec![2.0, 6.0]);
    }

    #[test]
    fn gesummv_combines_two_products() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![0.0, 1.0, 1.0, 0.0];
        let y = gesummv(2.0, 3.0, &a, &b, 2, &[1.0, 2.0]);
        // 2·[1,2] + 3·[2,1] = [8,7]
        assert_eq!(y, vec![8.0, 7.0]);
    }

    #[test]
    fn flop_counts_positive_and_scale() {
        assert!(gramschmidt_flops(8, 4) > 0);
        assert_eq!(mvt_flops(10), 400);
        assert!(gemver_flops(10) > mvt_flops(10));
        assert_eq!(gesummv_flops(2), 22);
        assert_eq!(vec_add_flops(16), 16);
        // quadratic growth
        assert!(mvt_flops(20) == 4 * mvt_flops(10));
    }
}
