//! Small dense linear-algebra kernels shared by the reference executors and
//! the PolyBench phase benchmarks.

/// `y = W · x` where `W` is `rows × cols` row-major and `x` has `cols`
/// elements.
///
/// # Panics
/// Panics on shape mismatch.
pub fn matvec(w: &[f64], rows: usize, cols: usize, x: &[f64]) -> Vec<f64> {
    assert_eq!(w.len(), rows * cols, "weight shape mismatch");
    assert_eq!(x.len(), cols, "input length mismatch");
    let mut y = vec![0.0; rows];
    for (r, yr) in y.iter_mut().enumerate() {
        let row = &w[r * cols..(r + 1) * cols];
        *yr = dot(row, x);
    }
    y
}

/// Dot product of equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `a += b` element-wise.
pub fn add_assign(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// `a = max(a, b)` element-wise.
pub fn max_assign(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "max length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x = x.max(*y);
    }
}

/// `a *= s` element-wise.
pub fn scale(a: &mut [f64], s: f64) {
    for x in a.iter_mut() {
        *x *= s;
    }
}

/// Element-wise product `a ⊙ b`.
pub fn hadamard(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "hadamard length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

/// ReLU in place.
pub fn relu_inplace(a: &mut [f64]) {
    for x in a.iter_mut() {
        *x = x.max(0.0);
    }
}

/// Logistic sigmoid in place.
pub fn sigmoid_inplace(a: &mut [f64]) {
    for x in a.iter_mut() {
        *x = 1.0 / (1.0 + (-*x).exp());
    }
}

/// Numerically stable softmax in place; a zero-length slice is a no-op.
pub fn softmax_inplace(a: &mut [f64]) {
    if a.is_empty() {
        return;
    }
    let m = a.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for x in a.iter_mut() {
        *x = (*x - m).exp();
        sum += *x;
    }
    for x in a.iter_mut() {
        *x /= sum;
    }
}

/// Concatenation `[a, b]`.
pub fn concat(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut v = Vec::with_capacity(a.len() + b.len());
    v.extend_from_slice(a);
    v.extend_from_slice(b);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matvec_identity() {
        let w = vec![1.0, 0.0, 0.0, 1.0];
        assert_eq!(matvec(&w, 2, 2, &[3.0, -4.0]), vec![3.0, -4.0]);
    }

    #[test]
    fn matvec_rectangular() {
        // [1 2 3; 4 5 6] * [1, 1, 1] = [6, 15]
        let w = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(matvec(&w, 2, 3, &[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    #[test]
    fn dot_and_hadamard() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(hadamard(&[1.0, 2.0], &[3.0, 4.0]), vec![3.0, 8.0]);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = vec![1.0, -2.0];
        add_assign(&mut a, &[1.0, 1.0]);
        assert_eq!(a, vec![2.0, -1.0]);
        max_assign(&mut a, &[0.0, 5.0]);
        assert_eq!(a, vec![2.0, 5.0]);
        scale(&mut a, 0.5);
        assert_eq!(a, vec![1.0, 2.5]);
        relu_inplace(&mut a);
        assert_eq!(a, vec![1.0, 2.5]);
        let mut b = vec![-1.0, 3.0];
        relu_inplace(&mut b);
        assert_eq!(b, vec![0.0, 3.0]);
    }

    #[test]
    fn sigmoid_bounds() {
        let mut a = vec![-100.0, 0.0, 100.0];
        sigmoid_inplace(&mut a);
        assert!(a[0] < 1e-12);
        assert!((a[1] - 0.5).abs() < 1e-12);
        assert!((a[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut a = vec![1000.0, 1001.0, 999.0];
        softmax_inplace(&mut a);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(a.iter().all(|&x| x.is_finite() && x >= 0.0));
        softmax_inplace(&mut []);
    }

    #[test]
    fn concat_order() {
        assert_eq!(concat(&[1.0], &[2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_rejects_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn softmax_always_normalises(v in proptest::collection::vec(-50.0f64..50.0, 1..20)) {
            let mut a = v;
            softmax_inplace(&mut a);
            prop_assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn matvec_linear_in_x(
            x in proptest::collection::vec(-10.0f64..10.0, 4),
            k in -5.0f64..5.0
        ) {
            let w: Vec<f64> = (0..12).map(|i| i as f64 * 0.25 - 1.0).collect();
            let y1 = matvec(&w, 3, 4, &x);
            let xs: Vec<f64> = x.iter().map(|v| v * k).collect();
            let y2 = matvec(&w, 3, 4, &xs);
            for (a, b) in y1.iter().zip(&y2) {
                prop_assert!((a * k - b).abs() < 1e-6, "a*k={} b={}", a * k, b);
            }
        }
    }
}
