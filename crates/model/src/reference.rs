//! Numeric reference execution of GNN layers.
//!
//! These executors compute the *actual* layer mathematics (Eqs. 1-5) in
//! double precision. They serve two purposes:
//!
//! 1. **Golden outputs** — the PE functional datapath model (`aurora-pe`)
//!    must reproduce these results bit-for-bit for the operation mixes it
//!    claims to support.
//! 2. **Semantics anchor** — the op counts in [`crate::workload`] are
//!    validated against what a real execution performs.

use crate::spec::{ModelId, ModelSpec};
use crate::zoo;
use aurora_graph::{Csr, FeatureMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One executable GNN layer with fixed weights.
pub trait GnnLayer {
    /// Which zoo model this is.
    fn model_id(&self) -> ModelId;

    /// Output feature width.
    fn output_dim(&self) -> usize;

    /// Runs one message-passing layer over `g` with input features `x`
    /// (row `v` = feature vector of vertex `v`).
    fn forward(&self, g: &Csr, x: &FeatureMatrix) -> FeatureMatrix;

    /// The static spec of this layer's model.
    fn spec(&self) -> ModelSpec {
        self.model_id().spec()
    }
}

/// Deterministic weight initialisation: uniform in `(-s, s)` with
/// `s = 1/√cols` (Glorot-ish), seeded.
pub fn init_weights(rows: usize, cols: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = 1.0 / (cols.max(1) as f64).sqrt();
    (0..rows * cols).map(|_| rng.gen_range(-s..s)).collect()
}

/// A stack of layers executed back to back — a full GNN.
pub struct GnnNetwork {
    layers: Vec<Box<dyn GnnLayer>>,
}

impl GnnNetwork {
    /// Builds a `model` network through the given feature widths
    /// (`dims[0]` input → … → `dims.last()` output), with deterministic
    /// per-layer weights derived from `seed`.
    ///
    /// # Panics
    /// Panics with fewer than two dims (no layer to build).
    pub fn new(model: ModelId, dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output widths");
        if matches!(model, ModelId::EdgeConv1 | ModelId::EdgeConv5) {
            assert!(
                dims.windows(2).all(|w| w[0] == w[1]),
                "EdgeConv layers are width-preserving; use equal dims"
            );
        }
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| layer_for(model, w[0], w[1], seed.wrapping_add(i as u64 * 0x51)))
            .collect();
        Self { layers }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Runs the full forward pass.
    pub fn forward(&self, g: &Csr, x: &FeatureMatrix) -> FeatureMatrix {
        let mut h = self.layers[0].forward(g, x);
        for layer in &self.layers[1..] {
            h = layer.forward(g, &h);
        }
        h
    }
}

/// Instantiates any zoo model with deterministic weights.
pub fn layer_for(id: ModelId, f_in: usize, f_out: usize, seed: u64) -> Box<dyn GnnLayer> {
    match id {
        ModelId::Gcn => Box::new(zoo::gcn::Gcn::new_random(f_in, f_out, seed)),
        ModelId::SageMean => Box::new(zoo::sage::SageMean::new_random(f_in, f_out, seed)),
        ModelId::Gin => Box::new(zoo::gin::Gin::new_random(f_in, f_out, seed)),
        ModelId::CommNet => Box::new(zoo::commnet::CommNet::new_random(f_in, f_out, seed)),
        ModelId::VanillaAttention => Box::new(zoo::attention::VanillaAttention::new_random(
            f_in, f_out, seed,
        )),
        ModelId::Agnn => Box::new(zoo::attention::Agnn::new_random(f_in, f_out, seed)),
        ModelId::GGcn => Box::new(zoo::ggcn::GGcn::new_random(f_in, f_out, seed)),
        ModelId::SagePool => Box::new(zoo::sage::SagePool::new_random(f_in, f_out, seed)),
        ModelId::EdgeConv1 => Box::new(zoo::edgeconv::EdgeConv::new_random(f_in, 1, seed)),
        ModelId::EdgeConv5 => Box::new(zoo::edgeconv::EdgeConv::new_random(f_in, 5, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_graph::generate;

    #[test]
    fn every_model_runs_and_shapes_check() {
        let g = generate::rmat(24, 100, Default::default(), 3).with_self_loops();
        let x = FeatureMatrix::random(24, 12, 0.8, 5);
        for id in ModelId::ALL {
            let layer = layer_for(id, 12, 6, 9);
            let y = layer.forward(&g, &x);
            assert_eq!(y.rows(), 24, "{}", id.name());
            assert_eq!(y.cols(), layer.output_dim(), "{}", id.name());
            assert!(
                y.as_slice().iter().all(|v| v.is_finite()),
                "{} produced non-finite output",
                id.name()
            );
        }
    }

    #[test]
    fn forward_is_deterministic() {
        let g = generate::ring(8);
        let x = FeatureMatrix::random(8, 4, 1.0, 1);
        for id in ModelId::ALL {
            let a = layer_for(id, 4, 3, 7).forward(&g, &x);
            let b = layer_for(id, 4, 3, 7).forward(&g, &x);
            assert_eq!(a, b, "{}", id.name());
        }
    }

    #[test]
    fn weights_deterministic_and_bounded() {
        let a = init_weights(4, 9, 11);
        let b = init_weights(4, 9, 11);
        assert_eq!(a, b);
        assert!(a.iter().all(|w| w.abs() < 1.0 / 3.0 + 1e-12));
        assert_ne!(a, init_weights(4, 9, 12));
    }

    #[test]
    fn network_stacks_layers() {
        let g = generate::rmat(16, 60, Default::default(), 1);
        let x = FeatureMatrix::random(16, 8, 1.0, 2);
        let net = GnnNetwork::new(ModelId::Gcn, &[8, 6, 4], 3);
        assert_eq!(net.depth(), 2);
        let y = net.forward(&g, &x);
        assert_eq!(y.cols(), 4);
        // equals the manual two-layer composition with the same seeds
        let l1 = layer_for(ModelId::Gcn, 8, 6, 3);
        let l2 = layer_for(ModelId::Gcn, 6, 4, 3 + 0x51);
        let manual = l2.forward(&g, &l1.forward(&g, &x));
        assert!(y.max_abs_diff(&manual) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width-preserving")]
    fn edgeconv_network_rejects_width_change() {
        GnnNetwork::new(ModelId::EdgeConv1, &[8, 4], 0);
    }

    /// GNNs are permutation-equivariant: relabelling the graph and its
    /// features permutes the output identically. This is the strongest
    /// blanket correctness property a message-passing layer has, and it
    /// holds for every model in the zoo.
    #[test]
    #[allow(clippy::needless_range_loop)] // index-driven permutation checks
    fn all_models_are_permutation_equivariant() {
        use aurora_graph::reorder;
        let g = generate::rmat(20, 90, Default::default(), 6);
        let x = FeatureMatrix::random(20, 5, 1.0, 2);
        let perm = reorder::bfs(&g, 0);
        let h = reorder::apply(&g, &perm);
        let mut xp = FeatureMatrix::zeros(20, 5);
        for v in 0..20usize {
            xp.row_mut(perm[v] as usize).copy_from_slice(x.row(v));
        }
        for id in ModelId::ALL {
            let layer = layer_for(id, 5, 3, 8);
            let y = layer.forward(&g, &x);
            let yp = layer.forward(&h, &xp);
            for v in 0..20usize {
                let a = y.row(v);
                let b = yp.row(perm[v] as usize);
                for (ai, bi) in a.iter().zip(b) {
                    assert!(
                        (ai - bi).abs() < 1e-9,
                        "{} violated equivariance at vertex {v}",
                        id.name()
                    );
                }
            }
        }
    }

    #[test]
    fn isolated_vertices_are_safe() {
        // graph with no edges at all
        let g = Csr::empty(5);
        let x = FeatureMatrix::random(5, 4, 1.0, 2);
        for id in ModelId::ALL {
            let y = layer_for(id, 4, 3, 3).forward(&g, &x);
            assert!(
                y.as_slice().iter().all(|v| v.is_finite()),
                "{} not safe on empty graph",
                id.name()
            );
        }
    }
}
