//! GNN execution phases (§II, Fig. 1) and per-phase operation lists.

use crate::ops::OpKind;
use serde::{Deserialize, Serialize};

/// The three message-passing phases of a GNN layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// ψ — compute per-edge features from endpoint features (Fig. 1 a).
    EdgeUpdate,
    /// ⊕ — reduce neighbour/edge features into one vector (Fig. 1 b).
    Aggregation,
    /// φ — transform the aggregated vector with the weight matrix (Fig. 1 c).
    VertexUpdate,
}

impl Phase {
    /// The phases in pipeline order.
    pub const ALL: [Phase; 3] = [Phase::EdgeUpdate, Phase::Aggregation, Phase::VertexUpdate];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::EdgeUpdate => "Edge Update",
            Phase::Aggregation => "Aggregation",
            Phase::VertexUpdate => "Vertex Update",
        }
    }

    /// Which sub-accelerator executes this phase. Edge update and
    /// aggregation "exhibit the same communication patterns [and] are
    /// running on the same architecture" (sub-accelerator A, §V);
    /// vertex update runs on sub-accelerator B.
    pub fn sub_accelerator(self) -> SubAccelerator {
        match self {
            Phase::EdgeUpdate | Phase::Aggregation => SubAccelerator::A,
            Phase::VertexUpdate => SubAccelerator::B,
        }
    }
}

/// The two dynamically partitioned sub-accelerators (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubAccelerator {
    /// Irregular phases: edge update + aggregation.
    A,
    /// Regular neural computation: vertex update.
    B,
}

/// The operations one phase performs, with their per-unit granularity.
///
/// `per_edge` ops execute once per edge, `per_vertex` ops once per vertex —
/// this is the granularity Table II implies and what the workload
/// characterisation multiplies out.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PhaseSpec {
    /// Ops executed once per edge.
    pub per_edge: Vec<OpKind>,
    /// Ops executed once per vertex.
    pub per_vertex: Vec<OpKind>,
}

impl PhaseSpec {
    /// A phase with no work ("Null" in Table II).
    pub fn null() -> Self {
        Self::default()
    }

    /// Whether the phase does anything.
    pub fn is_null(&self) -> bool {
        self.per_edge.is_empty() && self.per_vertex.is_empty()
    }

    /// All distinct op kinds in this phase.
    pub fn op_kinds(&self) -> Vec<OpKind> {
        let mut v: Vec<OpKind> = self
            .per_edge
            .iter()
            .chain(&self.per_vertex)
            .copied()
            .collect();
        v.sort_by_key(|o| o.notation());
        v.dedup();
        v
    }

    /// Whether this phase needs the multiplier array at all.
    pub fn needs_multipliers(&self) -> bool {
        self.per_edge
            .iter()
            .chain(&self.per_vertex)
            .any(|o| o.needs_multipliers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Activation;

    #[test]
    fn phase_to_sub_accelerator() {
        assert_eq!(Phase::EdgeUpdate.sub_accelerator(), SubAccelerator::A);
        assert_eq!(Phase::Aggregation.sub_accelerator(), SubAccelerator::A);
        assert_eq!(Phase::VertexUpdate.sub_accelerator(), SubAccelerator::B);
    }

    #[test]
    fn null_phase() {
        let p = PhaseSpec::null();
        assert!(p.is_null());
        assert!(!p.needs_multipliers());
        assert!(p.op_kinds().is_empty());
    }

    #[test]
    fn op_kinds_dedup() {
        let p = PhaseSpec {
            per_edge: vec![OpKind::ScalarVec, OpKind::ScalarVec, OpKind::VecDot],
            per_vertex: vec![OpKind::Act(Activation::ReLU)],
        };
        assert_eq!(p.op_kinds().len(), 3);
        assert!(p.needs_multipliers());
    }

    #[test]
    fn accumulate_only_phase_needs_no_multipliers() {
        let p = PhaseSpec {
            per_edge: vec![OpKind::AccumVec],
            per_vertex: vec![],
        };
        assert!(!p.needs_multipliers());
    }
}
