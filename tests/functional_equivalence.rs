//! Functional validation: GNN layers executed through the reconfigurable
//! PE datapath must match the reference executors exactly, for every
//! datapath mode Fig. 6 defines.

use aurora::graph::{generate, Csr, FeatureMatrix, GraphBuilder};
use aurora::model::reference::{init_weights, layer_for, GnnLayer};
use aurora::model::zoo::{CommNet, Gin};
use aurora::model::{Activation, ModelId};
use aurora::pe::{PeConfig, ProcessingElement};

fn small_graph() -> Csr {
    let mut b = GraphBuilder::new(6);
    b.add_undirected_edge(0, 1)
        .add_undirected_edge(0, 2)
        .add_undirected_edge(1, 3)
        .add_undirected_edge(2, 4)
        .add_undirected_edge(3, 5)
        .add_undirected_edge(0, 5);
    b.build()
}

/// CommNet through the PE: ΣV aggregation (Fig. 6 c) + M×V (Fig. 6 a).
#[test]
fn commnet_layer_via_pe_matches_reference() {
    let g = small_graph();
    let (f_in, f_out) = (5, 3);
    let x = FeatureMatrix::random(6, f_in, 1.0, 3);
    let w = init_weights(f_out, f_in, 17);
    let reference = CommNet::new(f_in, f_out, w.clone()).forward(&g, &x);

    let mut pe = ProcessingElement::new(PeConfig::default());
    let mut out = FeatureMatrix::zeros(6, f_out);
    for v in 0..6u32 {
        let mut m = vec![0.0; f_in];
        for &u in g.neighbors(v) {
            pe.exec_accumulate(&mut m, x.row(u as usize));
        }
        let (y, _) = pe.exec_matvec(&w, f_out, f_in, &m);
        out.row_mut(v as usize).copy_from_slice(&y);
    }
    assert!(out.max_abs_diff(&reference) < 1e-9);
    let s = pe.stats();
    assert!(s.reconfigurations > 0, "phases switch datapath modes");
}

/// GIN through the PE: scalar (1+ε) scaling (Fig. 6 b) + ΣV + M×V.
#[test]
fn gin_layer_via_pe_matches_reference() {
    let g = small_graph();
    let (f_in, f_out) = (4, 4);
    let x = FeatureMatrix::random(6, f_in, 1.0, 9);
    let w = init_weights(f_out, f_in, 23);
    let eps = 0.25;
    let reference = Gin::new(f_in, f_out, eps, w.clone()).forward(&g, &x);

    let mut pe = ProcessingElement::new(PeConfig::default());
    let mut out = FeatureMatrix::zeros(6, f_out);
    for v in 0..6u32 {
        let (mut m, _) = pe.exec_scalar_mul(1.0 + eps, x.row(v as usize));
        for &u in g.neighbors(v) {
            pe.exec_accumulate(&mut m, x.row(u as usize));
        }
        let (y, _) = pe.exec_matvec(&w, f_out, f_in, &m);
        out.row_mut(v as usize).copy_from_slice(&y);
    }
    assert!(out.max_abs_diff(&reference) < 1e-9);
}

/// Attention's edge coefficients through the PE's dot-product mode.
#[test]
fn attention_coefficients_via_pe() {
    let g = small_graph();
    let x = FeatureMatrix::random(6, 8, 1.0, 2);
    let mut pe = ProcessingElement::new(PeConfig::default());
    for v in 0..6u32 {
        for &u in g.neighbors(v) {
            let (c, _) = pe.exec_dot(x.row(v as usize), x.row(u as usize));
            let expect = aurora::model::linalg::dot(x.row(v as usize), x.row(u as usize));
            assert!((c - expect).abs() < 1e-12);
        }
    }
}

/// EdgeConv's max pooling and the PPU's activation/concat paths.
#[test]
fn ppu_and_max_paths_match() {
    let mut pe = ProcessingElement::new(PeConfig::default());
    let mut acc = vec![-1.0, 4.0, 0.0];
    pe.exec_max_accumulate(&mut acc, &[2.0, 3.0, -1.0]);
    assert_eq!(acc, vec![2.0, 4.0, 0.0]);

    let mut v = vec![-2.0, 5.0];
    pe.exec_activate(&mut v, Activation::ReLU);
    assert_eq!(v, vec![0.0, 5.0]);

    let (cat, _) = pe.exec_concat(&[1.0], &[2.0, 3.0]);
    assert_eq!(cat, vec![1.0, 2.0, 3.0]);
}

/// Two-layer chaining: the composite reference inference stays finite and
/// shape-correct for all models on a larger random graph.
#[test]
fn two_layer_inference_all_models() {
    let g = generate::rmat(64, 400, Default::default(), 8).with_self_loops();
    let x = FeatureMatrix::random(64, 12, 0.7, 4);
    for id in ModelId::ALL {
        let l1 = layer_for(id, 12, 12, 5);
        let h = l1.forward(&g, &x);
        let l2 = layer_for(id, 12, 6, 6);
        let y = l2.forward(&g, &h);
        assert_eq!(y.rows(), 64, "{}", id.name());
        assert!(
            y.as_slice().iter().all(|v| v.is_finite()),
            "{} produced non-finite output",
            id.name()
        );
    }
}
