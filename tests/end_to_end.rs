//! Cross-crate integration: dataset synthesis → Aurora simulation →
//! baseline comparison → report invariants.

use aurora::baselines::{BaselineKind, BaselineParams};
use aurora::core::{AcceleratorConfig, AuroraSimulator, SimRequest};
use aurora::graph::Dataset;
use aurora::mapping::MappingPolicy;
use aurora::model::{LayerShape, ModelId};

/// One-shot Aurora run through the request API.
fn run_request(
    sim: &AuroraSimulator,
    g: &aurora::graph::Csr,
    model: ModelId,
    shapes: &[LayerShape],
    workload: &str,
    density: f64,
) -> aurora::core::SimReport {
    let req = SimRequest::builder(model)
        .config(*sim.config())
        .inline_graph(g.clone())
        .layers(shapes)
        .workload(workload)
        .input_density(density)
        .build()
        .unwrap();
    sim.run(&req).unwrap()
}

fn citeseer_quarter() -> (aurora::graph::Csr, [LayerShape; 2], f64) {
    let spec = Dataset::Citeseer.spec().scaled(4);
    let g = spec.synthesize();
    let shapes = [
        LayerShape::new(spec.feature_dim, 16),
        LayerShape::new(16, spec.classes),
    ];
    (g, shapes, spec.feature_density)
}

#[test]
fn aurora_report_is_internally_consistent() {
    let (g, shapes, density) = citeseer_quarter();
    let r = run_request(
        &AuroraSimulator::new(AcceleratorConfig::default()),
        &g,
        ModelId::Gcn,
        &shapes,
        "Citeseer/4",
        density,
    );
    // layer cycles sum to the total
    let sum: u64 = r.layers.iter().map(|l| l.total_cycles).sum();
    assert_eq!(sum, r.total_cycles);
    // activity's DRAM bytes match the controller's counters
    assert_eq!(r.activity.dram_bytes, r.dram.total_bytes());
    // the energy breakdown is the priced activity
    assert!(r.energy.total() > 0.0);
    assert!(r.energy.dram > 0.0 && r.energy.compute > 0.0);
    // cycles → seconds conversion
    assert!((r.seconds() - r.total_cycles as f64 / 0.7e9).abs() < 1e-12);
}

#[test]
fn aurora_beats_every_baseline_on_a_real_dataset() {
    let (g, shapes, density) = citeseer_quarter();
    let aurora = run_request(
        &AuroraSimulator::new(AcceleratorConfig::default()),
        &g,
        ModelId::Gcn,
        &shapes,
        "Citeseer/4",
        density,
    );
    for b in BaselineKind::ALL {
        let r =
            b.build(BaselineParams::default())
                .simulate(&g, ModelId::Gcn, &shapes, "Citeseer/4");
        assert!(
            r.total_cycles > aurora.total_cycles,
            "{} not slower than Aurora",
            b.name()
        );
        assert!(
            r.energy_joules() > aurora.energy_joules(),
            "{} not more energy than Aurora",
            b.name()
        );
        assert!(
            r.dram.total_bytes() >= aurora.dram.total_bytes(),
            "{} below Aurora's DRAM",
            b.name()
        );
    }
}

#[test]
fn every_ablation_axis_matters() {
    let (g, shapes, density) = citeseer_quarter();
    let full = run_request(
        &AuroraSimulator::new(AcceleratorConfig::default()),
        &g,
        ModelId::Gcn,
        &shapes,
        "t",
        density,
    );
    // hashing + rigid NoC + fixed partition: the "no contributions" config
    let stripped = AcceleratorConfig {
        mapping_policy: MappingPolicy::Hashing,
        flexible_noc: false,
        dynamic_partition: false,
        ..AcceleratorConfig::default()
    };
    let base = run_request(
        &AuroraSimulator::new(stripped),
        &g,
        ModelId::Gcn,
        &shapes,
        "t",
        density,
    );
    // the workload is DRAM-bound, so the end-to-end gap can be small —
    // but the full configuration must win clearly on on-chip latency and
    // never lose more than the exposed reconfiguration fill on the total
    assert!(full.noc_cycles() < base.noc_cycles());
    assert!(
        full.total_cycles as f64 <= base.total_cycles as f64 * 1.01,
        "full Aurora ({}) must not lose to the stripped config ({})",
        full.total_cycles,
        base.total_cycles
    );
}

#[test]
fn all_models_run_on_the_paper_configuration() {
    let g = aurora::graph::generate::rmat(2_000, 16_000, Default::default(), 5);
    let sim = AuroraSimulator::paper();
    for id in ModelId::ALL {
        let r = run_request(&sim, &g, id, &[LayerShape::new(64, 32)], "zoo", 1.0);
        assert!(r.total_cycles > 0, "{}", id.name());
        assert!(r.energy_joules() > 0.0, "{}", id.name());
        assert!(
            r.energy.reconfiguration_fraction() < 0.03,
            "{} reconfig energy {}",
            id.name(),
            r.energy.reconfiguration_fraction()
        );
    }
}

#[test]
fn simulation_is_deterministic() {
    let (g, shapes, density) = citeseer_quarter();
    let sim = AuroraSimulator::new(AcceleratorConfig::default());
    let a = run_request(&sim, &g, ModelId::Gcn, &shapes, "t", density);
    let b = run_request(&sim, &g, ModelId::Gcn, &shapes, "t", density);
    assert_eq!(a, b);
}

#[test]
fn reports_serialize_roundtrip() {
    let g = aurora::graph::generate::ring(256);
    let r = run_request(
        &AuroraSimulator::new(AcceleratorConfig::small(4)),
        &g,
        ModelId::Gin,
        &[LayerShape::new(8, 4)],
        "ring",
        1.0,
    );
    let json = serde_json::to_string(&r).expect("serialize");
    let back: aurora::core::SimReport = serde_json::from_str(&json).expect("deserialize");
    // float fields may lose a ULP through JSON; integers must be exact
    assert_eq!(back.accelerator, r.accelerator);
    assert_eq!(back.total_cycles, r.total_cycles);
    assert_eq!(back.dram, r.dram);
    assert_eq!(back.activity, r.activity);
    assert_eq!(back.layers.len(), r.layers.len());
    assert!((back.energy.total() - r.energy.total()).abs() < 1e-12);
}
