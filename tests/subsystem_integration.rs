//! Integration of the newer subsystems: functional-mode execution,
//! weight-stationary rings, traffic patterns, reordering, multi-channel
//! DRAM and graph I/O — each exercised across crate boundaries.

use aurora::core::functional::{reference_gcn_layer, run_gcn_layer};
use aurora::graph::{generate, io, reorder, FeatureMatrix};
use aurora::mapping::degree_aware;
use aurora::mem::MultiChannelDram;
use aurora::model::reference::{init_weights, GnnNetwork};
use aurora::model::ModelId;
use aurora::noc::{run_pattern, NocConfig, Pattern};
use aurora::pe::{PeConfig, WeightStationaryRow};

/// The full vertex-update path: aggregation on the mapped array
/// (functional mode) followed by the weight-stationary ring — output must
/// equal the reference GCN layer exactly.
#[test]
fn functional_aggregation_plus_ring_update_matches_reference() {
    let g = generate::rmat(64, 500, Default::default(), 4);
    let (f_in, f_out, k) = (12, 8, 4);
    let x = FeatureMatrix::random(64, f_in, 1.0, 1);
    let w = init_weights(f_out, f_in, 2);

    // functional run computes the whole layer on the array
    let mapping = degree_aware::map(0..64, &g.degrees(), k, 8);
    let run = run_gcn_layer(&g, &x, &w, f_out, &mapping, PeConfig::default());
    let reference = reference_gcn_layer(&g, &x, &w, f_out);
    assert!(run.output.max_abs_diff(&reference) < 1e-9);

    // independently: the ring applies W to the aggregated vectors — check
    // it against a plain matvec on each aggregate
    let deg: Vec<f64> = (0..64u32).map(|v| g.degree(v) as f64 + 1.0).collect();
    let aggregates: Vec<Vec<f64>> = (0..64u32)
        .map(|v| {
            let mut m: Vec<f64> = x.row(v as usize).to_vec();
            let s = 1.0 / (deg[v as usize] * deg[v as usize]).sqrt();
            m.iter_mut().for_each(|e| *e *= s);
            for &u in g.neighbors(v) {
                let s = 1.0 / (deg[u as usize] * deg[v as usize]).sqrt();
                for (mi, xi) in m.iter_mut().zip(x.row(u as usize)) {
                    *mi += s * xi;
                }
            }
            m
        })
        .collect();
    let mut ring = WeightStationaryRow::new(&w, f_out, f_in, k, PeConfig::default());
    let (ring_out, ring_cycles) = ring.run(&aggregates);
    assert!(ring_cycles > 0);
    for (v, out) in ring_out.iter().enumerate() {
        // the reference applies ReLU afterwards; compare pre-activation
        let expect = aurora::model::linalg::matvec(&w, f_out, f_in, &aggregates[v]);
        for (a, b) in out.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

/// Reordering a graph must not change what the accelerator computes, only
/// (possibly) how fast: run the functional layer on the relabelled graph
/// and map results back through the permutation.
#[test]
#[allow(clippy::needless_range_loop)] // index-driven permutation checks
fn reordering_preserves_functional_results() {
    let g = generate::rmat(48, 300, Default::default(), 9);
    let (f_in, f_out) = (6, 4);
    let x = FeatureMatrix::random(48, f_in, 1.0, 3);
    let w = init_weights(f_out, f_in, 5);
    let reference = reference_gcn_layer(&g, &x, &w, f_out);

    let perm = reorder::bfs(&g, 0);
    let h = reorder::apply(&g, &perm);
    // permute the features the same way
    let mut xp = FeatureMatrix::zeros(48, f_in);
    for v in 0..48usize {
        xp.row_mut(perm[v] as usize).copy_from_slice(x.row(v));
    }
    let mapping = degree_aware::map(0..48, &h.degrees(), 4, 4);
    let run = run_gcn_layer(&h, &xp, &w, f_out, &mapping, PeConfig::default());
    for v in 0..48usize {
        let got = run.output.row(perm[v] as usize);
        let want = reference.row(v);
        for (a, b) in got.iter().zip(want) {
            assert!((a - b).abs() < 1e-9, "vertex {v} diverged");
        }
    }
}

/// A graph written to disk, read back, and pushed through a two-layer
/// reference network gives identical results.
#[test]
fn io_roundtrip_preserves_inference() {
    let g = generate::rmat(40, 200, Default::default(), 11);
    let x = FeatureMatrix::random(40, 8, 0.9, 7);
    let net = GnnNetwork::new(ModelId::Gin, &[8, 6, 4], 13);
    let before = net.forward(&g, &x);

    let mut buf = Vec::new();
    io::write_edge_list(&g, &mut buf).unwrap();
    let g2 = io::read_edge_list(&buf[..]).unwrap();
    let after = net.forward(&g2, &x);
    assert_eq!(before, after);
}

/// Pattern infrastructure + fabric modes interact sanely: the bypass
/// fabric never loses to the mesh on the bisection-stress pattern.
#[test]
fn bypass_fabric_wins_bit_complement() {
    let k = 6;
    let mesh = run_pattern(NocConfig::mesh(k), Pattern::BitComplement, 4, 8).unwrap();
    let byp_cfg = NocConfig::with_bypass(
        k,
        (0..k)
            .map(|r| aurora::noc::BypassSegment {
                index: r,
                from: 0,
                to: k - 1,
            })
            .collect(),
        vec![],
    );
    let byp = run_pattern(byp_cfg, Pattern::BitComplement, 4, 8).unwrap();
    assert!(byp.stats.avg_hops() < mesh.stats.avg_hops());
    assert!(byp.pattern_cycles <= mesh.pattern_cycles);
}

/// The multi-channel DRAM engine serves an accelerator-shaped trace
/// (feature read + weight read + output write) with sensible channel
/// balance.
#[test]
fn multichannel_dram_serves_layer_trace() {
    let mut d = MultiChannelDram::ddr3(4);
    let feature_bytes = 64 * 1024u64;
    let weight_bytes = 16 * 1024u64;
    d.submit_range(0, feature_bytes, false, 0);
    d.submit_range(feature_bytes, weight_bytes, false, 0);
    d.submit_range(feature_bytes + weight_bytes, 32 * 1024, true, 0);
    let (makespan, stats) = d.run_to_completion();
    assert!(makespan > 0);
    let total: u64 = stats.iter().map(|s| s.requests()).sum();
    assert_eq!(total, (feature_bytes + weight_bytes + 32 * 1024) / 64);
    let max = stats.iter().map(|s| s.requests()).max().unwrap();
    let min = stats.iter().map(|s| s.requests()).min().unwrap();
    assert!(max - min <= 1, "channels must stay balanced");
}
