//! The engine's analytic on-chip estimator vs the cycle-level NoC on
//! realistic traffic, across fabric configurations.

use aurora::core::noc_model;
use aurora::graph::generate;
use aurora::mapping::{degree_aware, hashing, plan::plan_bypass};
use aurora::noc::{BypassSegment, Network, NocConfig};

fn detailed_cycles(cfg: NocConfig, traffic: &[(usize, usize, usize)]) -> u64 {
    let mut net = Network::new(cfg);
    for &(s, d, w) in traffic {
        if s != d {
            net.inject(s, d, w);
        }
    }
    net.drain(5_000_000).expect("network must drain")
}

#[test]
fn estimator_tracks_engine_on_random_graph() {
    let k = 6;
    let g = generate::rmat(96, 800, Default::default(), 3);
    let mapping = degree_aware::map(0..96, &g.degrees(), k, 4);
    let cfg = NocConfig::mesh(k);
    let words = 12;
    let est = noc_model::aggregation_traffic(
        &cfg,
        &mapping,
        g.edges(),
        words,
        noc_model::DEFAULT_LINK_UTILISATION,
    )
    .unwrap();
    let traffic: Vec<_> = g
        .edges()
        .map(|(u, v)| (mapping.pe_of(u), mapping.pe_of(v), words))
        .collect();
    let cycles = detailed_cycles(cfg, &traffic);
    let ratio = est.cycles as f64 / cycles as f64;
    assert!(
        (0.15..6.0).contains(&ratio),
        "estimate {} vs engine {cycles} (ratio {ratio:.2})",
        est.cycles
    );
}

#[test]
fn estimator_and_engine_agree_bypass_helps_a_star() {
    let k = 6;
    let g = generate::star(72);
    let mapping = degree_aware::map(0..72, &g.degrees(), k, 2);
    let words = 8;

    let mesh = NocConfig::mesh(k);
    let est_mesh = noc_model::aggregation_traffic(
        &mesh,
        &mapping,
        g.edges(),
        words,
        noc_model::DEFAULT_LINK_UTILISATION,
    )
    .unwrap();

    let plan = plan_bypass(&mapping, g.edges());
    let to_seg = |s: &aurora::mapping::plan::SegmentPlan| BypassSegment {
        index: s.index,
        from: s.from,
        to: s.to,
    };
    let byp = NocConfig::with_bypass(
        k,
        plan.rows.iter().map(to_seg).collect(),
        plan.cols.iter().map(to_seg).collect(),
    );
    let est_byp = noc_model::aggregation_traffic(
        &byp,
        &mapping,
        g.edges(),
        words,
        noc_model::DEFAULT_LINK_UTILISATION,
    )
    .unwrap();
    assert!(
        est_byp.avg_hops <= est_mesh.avg_hops,
        "estimator: bypass shortens"
    );

    let traffic: Vec<_> = g
        .edges()
        .map(|(u, v)| (mapping.pe_of(u), mapping.pe_of(v), words))
        .collect();
    let c_mesh = detailed_cycles(mesh, &traffic);
    let c_byp = detailed_cycles(byp, &traffic);
    assert!(
        c_byp <= c_mesh,
        "engine: bypass config ({c_byp}) should not lose to mesh ({c_mesh})"
    );
}

#[test]
fn hashing_hotspots_show_in_both_models() {
    let k = 6;
    let g = generate::rmat(144, 1500, Default::default(), 13);
    let words = 8;
    let h = hashing::map(0..144, &g.degrees(), k, 5);
    let d = degree_aware::map(0..144, &g.degrees(), k, 5);
    let cfg = NocConfig::mesh(k);

    let est_h = noc_model::aggregation_traffic(
        &cfg,
        &h,
        g.edges(),
        words,
        noc_model::DEFAULT_LINK_UTILISATION,
    )
    .unwrap();
    let est_d = noc_model::aggregation_traffic(
        &cfg,
        &d,
        g.edges(),
        words,
        noc_model::DEFAULT_LINK_UTILISATION,
    )
    .unwrap();
    // identical message volume; placement only changes the distribution
    assert_eq!(est_h.messages, est_d.messages);

    let run = |m: &aurora::mapping::VertexMapping| {
        let mut net = Network::new(NocConfig::mesh(k));
        for (u, v) in g.edges() {
            let (s, dd) = (m.pe_of(u), m.pe_of(v));
            if s != dd {
                net.inject(s, dd, words);
            }
        }
        net.drain(5_000_000).unwrap();
        net.stats().load_imbalance()
    };
    let imb_h = run(&h);
    let imb_d = run(&d);
    // the cycle-level engine sees an imbalance for both, and the
    // degree-aware placement never makes it *worse* by much
    assert!(imb_h > 1.0 && imb_d > 1.0);
    assert!(
        imb_d <= imb_h * 1.5,
        "degree-aware {imb_d} vs hashing {imb_h}"
    );
}

#[test]
fn ring_estimate_matches_engine_rotation() {
    let k = 4;
    let cfg = NocConfig::rings(k);
    // one full rotation: each node sends to its ring predecessor (k−1 hops)
    let mut net = Network::new(cfg.clone());
    for y in 0..k {
        for x in 0..k {
            let src = y * k + x;
            let dst = y * k + (x + k - 1) % k;
            net.inject(src, dst, 4);
        }
    }
    let cycles = net.drain(100_000).unwrap();
    let est = noc_model::ring_traffic(&cfg, k * k, 4, noc_model::DEFAULT_LINK_UTILISATION);
    // both models are within a small factor for this uniform pattern
    let ratio = est.cycles as f64 / cycles as f64;
    assert!(
        (0.1..10.0).contains(&ratio),
        "ring estimate {} vs engine {cycles}",
        est.cycles
    );
    assert_eq!(net.stats().packets_delivered, (k * k) as u64);
}
