//! Direct checks of the paper's quantitative claims.

use aurora::core::{AcceleratorConfig, AuroraSimulator, SimRequest, Workflow};
use aurora::energy::AreaModel;
use aurora::graph::Dataset;
use aurora::mapping::nqueen;
use aurora::model::{LayerShape, ModelCategory, ModelId, Workload};
use aurora::noc::NocConfig;
use aurora::partition::partition;

/// §VI-D: "The latency consumption of each reconfiguration progress for
/// our proposed accelerator (32 × 32 PE array) is 63 cycles (2 × 32 − 1)".
#[test]
fn reconfiguration_latency_is_2k_minus_1() {
    assert_eq!(NocConfig::mesh(32).reconfiguration_cycles(), 63);
    assert_eq!(NocConfig::mesh(4).reconfiguration_cycles(), 7);
}

/// §IV: the N-Queen identification pattern puts one S_PE per row with no
/// shared columns or diagonals — at the paper's 32 × 32 radix.
#[test]
fn nqueen_at_paper_radix() {
    let s = nqueen::solve(32).expect("32 × 32 solves");
    assert!(nqueen::is_valid(&s));
    let positions = nqueen::s_pe_positions(32);
    assert_eq!(positions.len(), 32);
    let rows: std::collections::HashSet<_> = positions.iter().map(|p| p / 32).collect();
    let cols: std::collections::HashSet<_> = positions.iter().map(|p| p % 32).collect();
    assert_eq!(rows.len(), 32);
    assert_eq!(cols.len(), 32);
}

/// §VI-E: "The energy consumption of reconfiguration is less than 3% of
/// the overall energy consumption."
#[test]
fn reconfiguration_energy_below_three_percent() {
    let spec = Dataset::Cora.spec().scaled(2);
    let g = spec.synthesize();
    let sim = AuroraSimulator::paper();
    let req = SimRequest::builder(ModelId::Gcn)
        .config(*sim.config())
        .inline_graph(g.clone())
        .layers(&[
            LayerShape::new(spec.feature_dim, 16),
            LayerShape::new(16, spec.classes),
        ])
        .workload("Cora/2")
        .build()
        .unwrap();
    let r = sim.run(&req).unwrap();
    let f = r.energy.reconfiguration_fraction();
    assert!(f < 0.03, "reconfiguration fraction {f}");
    assert!(f > 0.0, "reconfiguration energy must be accounted");
}

/// §VI-F: the published area fractions.
#[test]
fn area_fractions_match_paper() {
    let b = AreaModel::default().breakdown();
    let pe_total = b.pe_mac + b.pe_memory + b.pe_control + b.pe_misc;
    assert!((b.pe_mac / pe_total - 0.071).abs() < 1e-6, "MAC 7.1% of PE");
    assert!(
        (b.pe_memory / pe_total - 0.829).abs() < 1e-6,
        "memory 82.9%"
    );
    assert!(
        (b.pe_control / pe_total - 0.037).abs() < 1e-6,
        "control 3.7%"
    );
    assert!(
        (b.pe_array / b.total_chip - 0.6274).abs() < 1e-6,
        "PE array 62.74%"
    );
    assert!(
        (b.controller / b.total_chip - 0.009).abs() < 1e-6,
        "controller 0.9%"
    );
    assert!(
        (b.interconnect_overhead() - 0.052).abs() < 1e-6,
        "interconnect 5.2%"
    );
}

/// Table I: Aurora supports every category; §V's special cases hold.
#[test]
fn coverage_and_partition_special_cases() {
    let mut cats = std::collections::HashSet::new();
    for id in ModelId::ALL {
        let wf = Workflow::generate(id);
        cats.insert(id.spec().category);
        // every phase's ops map onto the unified PE's datapath modes
        assert!(!wf.required_modes().is_empty());
        // §V: "only one accelerator will be formed if vertex updates are
        // not required"
        let counts = Workload::from_sizes(id, 1_000, 8_000, LayerShape::new(32, 16)).op_counts();
        let s = partition(&counts, 1024, 22.4e9);
        if !id.spec().has_vertex_update() {
            assert_eq!(s.b, 0, "{}", id.name());
        }
    }
    assert_eq!(cats.len(), 3, "C-GNN, A-GNN, MP-GNN all covered");
    assert!(cats.contains(&ModelCategory::MpGnn));
}

/// §VI-A: the paper's configuration — 32 × 32 PEs, 700 MHz, 100 KB bank
/// buffer per PE (so ~100 MB on chip, matching the baselines' storage).
#[test]
fn paper_configuration_constants() {
    let c = AcceleratorConfig::default();
    assert_eq!(c.k, 32);
    assert_eq!(c.num_pes(), 1024);
    assert_eq!(c.clock_mhz, 700);
    assert_eq!(c.pe.buffer_bytes, 100 * 1024);
    assert_eq!(c.onchip_bytes(), 100 * 1024 * 1024);
}

/// §IV: mapping complexity is N·log N + N — i.e., sort-dominated. We
/// check the observable contract: mapping a large subgraph stays fast and
/// its decision latency is dwarfed by execution (the paper overlaps the
/// ~100-cycle decision entirely).
#[test]
fn mapping_decision_is_cheap() {
    use std::time::Instant;
    let g = aurora::graph::generate::rmat(32 * 32 * 8, 60_000, Default::default(), 4);
    let degrees = g.degrees();
    let t0 = Instant::now();
    let m = aurora::mapping::degree_aware::map(0..g.num_vertices() as u32, &degrees, 32, 8);
    let elapsed = t0.elapsed();
    assert_eq!(m.high_degree_conflicts(), 0);
    assert!(
        elapsed.as_millis() < 500,
        "mapping took {elapsed:?} — not sort-dominated?"
    );
}
