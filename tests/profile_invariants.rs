//! End-to-end invariants of the bottleneck-attribution profiler.
//!
//! Runs every Table I model through the Aurora engine and checks that
//! the bound taxonomy is conservative: per-tile fractions sum to 1, the
//! mixes roll up exactly into the layer and run totals, and the
//! dominant-bound label always agrees with the tile-time maxima the
//! engine actually took.

use aurora_core::profile::CriticalStage;
use aurora_core::{
    metric_names, AcceleratorConfig, AuroraSimulator, Bound, SimReport, SimRequest, Telemetry,
};
use aurora_graph::generate;
use aurora_model::{LayerShape, ModelId};

const EPS: f64 = 1e-6;

fn run(model: ModelId) -> SimReport {
    let g = generate::rmat(1_024, 8_000, Default::default(), 5);
    let shapes = [LayerShape::new(32, 16), LayerShape::new(16, 8)];
    run_request(
        &AuroraSimulator::new(AcceleratorConfig::small(8)),
        &g,
        model,
        &shapes,
        "rmat-1k",
        1.0,
    )
}

/// One-shot Aurora run through the request API.
fn run_request(
    sim: &AuroraSimulator,
    g: &aurora_graph::Csr,
    model: ModelId,
    shapes: &[LayerShape],
    workload: &str,
    density: f64,
) -> SimReport {
    let req = SimRequest::builder(model)
        .config(*sim.config())
        .inline_graph(g.clone())
        .layers(shapes)
        .workload(workload)
        .input_density(density)
        .build()
        .unwrap();
    sim.run(&req).unwrap()
}

#[test]
fn fractions_sum_to_one_for_every_tile_of_every_model() {
    for model in ModelId::ALL {
        let r = run(model);
        assert!(!r.profile.tiles.is_empty(), "{}: no tiles", model.name());
        for t in &r.profile.tiles {
            assert!(t.slot_cycles > 0, "{}: empty slot", model.name());
            assert_eq!(
                t.mix.total(),
                t.slot_cycles,
                "{}: tile ({}, {}) mix must cover its slot exactly",
                model.name(),
                t.layer,
                t.tile
            );
            let sum: f64 = t.fractions().iter().map(|(_, f)| f).sum();
            assert!(
                (sum - 1.0).abs() < EPS,
                "{}: tile ({}, {}) fractions sum to {sum}",
                model.name(),
                t.layer,
                t.tile
            );
        }
    }
}

#[test]
fn dominant_bound_matches_tile_time_max() {
    for model in ModelId::ALL {
        let r = run(model);
        for t in &r.profile.tiles {
            // The engine's slot is max(exec, dram) with exec = max(A, B):
            // re-derive both maxima and check the label agrees.
            let exec = t.a.total().max(t.b.total());
            assert_eq!(t.exec_cycles(), exec);
            assert_eq!(t.slot_cycles, exec.max(t.dram_cycles));
            match t.critical {
                CriticalStage::A => assert!(t.a.total() >= t.b.total()),
                CriticalStage::B => assert!(t.b.total() > t.a.total()),
            }
            if t.dram_cycles >= exec {
                assert_eq!(
                    t.bound,
                    Bound::Dram,
                    "{}: tile ({}, {}) is paced by DRAM but labelled {}",
                    model.name(),
                    t.layer,
                    t.tile,
                    t.bound.label()
                );
            } else {
                // Execution paces the slot: the label is the largest
                // component of the critical stage, and hidden DRAM can
                // never win.
                assert_ne!(t.bound, Bound::Dram);
                let w = t.critical_side();
                let max_comp = w.compute_cycles.max(w.noc_cycles).max(w.imbalance_cycles);
                assert_eq!(t.candidate(t.bound), max_comp);
            }
            // The winner has no slack; losers' slack is the gap.
            assert_eq!(t.slack(t.bound), 0);
            for b in Bound::ALL {
                assert!(t.candidate(t.bound) >= t.candidate(b));
            }
        }
    }
}

#[test]
fn mixes_roll_up_into_layer_and_run_totals() {
    for model in ModelId::ALL {
        let r = run(model);
        let p = &r.profile;
        // Tile mixes sum to the layer mix, layer mixes to the run mix,
        // and attributed cycles plus exposed overhead equal the run.
        for l in &p.layers {
            let mut sum = aurora_core::BoundMix::default();
            for t in p.tiles.iter().filter(|t| t.layer == l.layer) {
                sum = sum.add(&t.mix);
            }
            assert_eq!(
                sum,
                l.mix,
                "{}: layer {} mix mismatch",
                model.name(),
                l.layer
            );
            let layer_total = r.layers[l.layer].total_cycles;
            assert_eq!(
                l.mix.total() + l.overhead_cycles,
                layer_total,
                "{}: layer {} attribution must cover the layer",
                model.name(),
                l.layer
            );
        }
        assert_eq!(
            p.mix.total() + p.overhead_cycles,
            r.total_cycles,
            "{}: run attribution must cover total_cycles",
            model.name()
        );
        let frac_sum: f64 = p.fractions().iter().map(|(_, f)| f).sum();
        assert!((frac_sum - 1.0).abs() < EPS);
    }
}

#[test]
fn traffic_cache_counters_reconcile_with_telemetry() {
    let g = generate::rmat(1_024, 8_000, Default::default(), 5);
    // Two layers with the same input width: identical tilings, vertex
    // mappings and per-tile NoC configs, so every layer-1 tile must hit
    // the unit-flit profile cache that layer 0 populated.
    let shapes = [LayerShape::new(32, 32), LayerShape::new(32, 16)];
    let r = run_request(
        &AuroraSimulator::new(AcceleratorConfig::small(8)).with_telemetry(Telemetry::enabled()),
        &g,
        ModelId::Gcn,
        &shapes,
        "rmat-1k",
        1.0,
    );
    let p = &r.profile;

    assert_eq!(p.layers.len(), 2);
    assert_eq!(p.layers[0].tiles, p.layers[1].tiles);
    let tiles = p.layers[0].tiles as u64;
    assert!(tiles > 0);

    // Layer 0 bins every tile; layer 1 rescales every cached profile.
    assert_eq!(p.tile_profile_misses, tiles);
    assert_eq!(p.tile_profile_hits, tiles);
    // Tables are keyed by distinct NocConfig: at least one build, never
    // more than the number of binned tiles.
    assert!(p.route_table_builds >= 1);
    assert!(p.route_table_builds <= p.tile_profile_misses);

    // The telemetry counters and the report fields are two views of the
    // same cache state.
    let m = &r.metrics;
    assert_eq!(
        m.counter_total(metric_names::NOC_ROUTE_TABLE_BUILDS),
        p.route_table_builds
    );
    assert_eq!(
        m.counter_total(metric_names::NOC_TILE_PROFILE_HITS),
        p.tile_profile_hits
    );
    assert_eq!(
        m.counter_total(metric_names::NOC_TILE_PROFILE_MISSES),
        p.tile_profile_misses
    );
    // Each k=8 build precomputes all (k²)² = 4096 source/dest pairs.
    assert_eq!(
        m.counter_total(metric_names::NOC_ROUTE_TABLE_PAIRS),
        p.route_table_builds * 4096
    );

    // Caching is transparent: a cold single-layer run of the same first
    // layer reports identical cycles, and both cached layers see the
    // same traffic (same tiles, same message width).
    let cold = run_request(
        &AuroraSimulator::new(AcceleratorConfig::small(8)),
        &g,
        ModelId::Gcn,
        &shapes[..1],
        "rmat-1k",
        1.0,
    );
    assert_eq!(cold.layers[0].total_cycles, r.layers[0].total_cycles);
    assert_eq!(cold.profile.tile_profile_hits, 0);
    assert_eq!(cold.profile.tile_profile_misses, tiles);
    assert_eq!(r.layers[0].noc, r.layers[1].noc);

    // A run without telemetry still fills the report fields.
    let quiet = run(ModelId::Gcn);
    assert!(quiet.profile.route_table_builds >= 1);
    assert!(quiet.metrics.is_empty());
}

#[test]
fn profile_header_and_roofline_are_populated() {
    let r = run(ModelId::Gcn);
    let p = &r.profile;
    assert_eq!(
        p.link_utilisation,
        AcceleratorConfig::default().link_utilisation
    );
    assert!(p.ops > 0);
    assert_eq!(p.dram_bytes, r.dram.total_bytes());
    assert!(p.operational_intensity > 0.0);
    assert!(p.achieved_gflops > 0.0);
    assert!(p.peak_gflops > p.achieved_gflops);
    assert!(p.dram_peak_gbps > 0.0);
    // Layer dram_bytes partition the run's total.
    let by_layer: u64 = p.layers.iter().map(|l| l.dram_bytes).sum();
    assert_eq!(by_layer, p.dram_bytes);
    // Top-k is ordered by slot and bounded by k.
    let top = p.top_limiting_tiles(3);
    assert!(top.len() <= 3);
    assert!(top.windows(2).all(|w| w[0].slot_cycles >= w[1].slot_cycles));
}
